package workload

// This file holds the per-benchmark generator parameterizations standing in
// for the paper's 11 SPECint2000 programs (Alpha binaries, reference
// inputs). The parameters were calibrated so each synthetic program lands
// near its published first-order behaviour on the Table 2 machine — L1
// D-cache miss rate, branch-misprediction rate, instruction footprint — and,
// most importantly for this study, so the cache-line reuse-gap spectrum
// spans the same range the paper's Table 3 reveals.
//
// The Rings are the load-bearing part: each ring is a set of L1-resident
// lines reused at a controlled gap. A decay interval shorter than a ring's
// gap turns that ring's reuses into induced misses (gated-Vss) or slow hits
// (drowsy); an interval longer spares them but forfeits the standby time of
// the ring's lines. The per-benchmark ring placement therefore encodes
// where each program's best decay interval falls: gcc and mcf have
// essentially no valuable long-gap reuse (lines die young -> short best
// intervals), while gzip's compression window and crafty's transposition
// tables are reused at tens-of-thousands-of-cycle gaps (gated-Vss must wait
// 32K-64K cycles before pulling the plug).
//
// Character notes:
//
//	gcc     large code, data churns across passes; lines die young
//	gzip    sliding-window compressor: window reused at ~40K-cycle gaps
//	parser  dictionary walks, medium-gap reuse (~12K cycles)
//	vortex  OO database, big code, call-heavy, well-predicted branches
//	gap     group-theory interpreter: workspace reused at ~10K gaps
//	perl    interpreter: hot dispatch tables, big code, short-gap reuse
//	twolf   placement: pointer chasing, poor branches, flat reuse
//	bzip2   block-sorting: streaming passes plus block-sized reuse
//	vpr     place & route, like twolf but lighter, ~5K-cycle reuse
//	mcf     network simplex over a ~1.6MB arena: L1-hostile, tight
//	        dependence chains, lines die almost immediately
//	crafty  chess: hash tables reused at ~25K-cycle gaps
var profileTable = []Profile{
	{
		Name:     "gcc",
		LoadFrac: 0.26, StoreFrac: 0.11, IntMulFrac: 0.01,
		DepP: 0.35, DepNoneFrac: 0.30,
		HotLines: 96, HotZipf: 0.70, PHot: 0.940,
		Rings:    []Ring{{Lines: 9, P: 0.030}, {Lines: 12, P: 0.004}},
		FarLines: 6000, FarZipf: 0.30, PFar: 0.020,
		SpatialRun:  3,
		ChurnPeriod: 25000, ChurnFrac: 0.10,
		CodeBlocks: 5000, BlockLen: 6,
		RegionBlocks: 12, CodeZipf: 1.15,
		FlakyFrac: 0.01, PatternFrac: 0.02, CallFrac: 0.08,
		TripMean: 20, MajorityProb: 0.97, PhaseJumpEvery: 40000,
		Seed: 101,
	},
	{
		Name:     "gzip",
		LoadFrac: 0.22, StoreFrac: 0.09, IntMulFrac: 0.01,
		DepP: 0.33, DepNoneFrac: 0.34,
		HotLines: 128, HotZipf: 0.80, PHot: 0.952,
		Rings:    []Ring{{Lines: 26, P: 0.020}, {Lines: 187, P: 0.015}},
		FarLines: 4000, FarZipf: 0.30, PFar: 0.009,
		SpatialRun:  5,
		ChurnPeriod: 60000, ChurnFrac: 0.05,
		CodeBlocks: 700, BlockLen: 7,
		RegionBlocks: 12, CodeZipf: 0.9,
		FlakyFrac: 0.03, PatternFrac: 0.04, CallFrac: 0.04,
		TripMean: 14, MajorityProb: 0.96, PhaseJumpEvery: 60000,
		Seed: 102,
	},
	{
		Name:     "parser",
		LoadFrac: 0.25, StoreFrac: 0.09, IntMulFrac: 0.01,
		DepP: 0.36, DepNoneFrac: 0.30,
		HotLines: 112, HotZipf: 0.75, PHot: 0.946,
		Rings:    []Ring{{Lines: 18, P: 0.025}, {Lines: 25, P: 0.007}},
		FarLines: 5000, FarZipf: 0.30, PFar: 0.018,
		SpatialRun:  2,
		ChurnPeriod: 30000, ChurnFrac: 0.10,
		CodeBlocks: 2500, BlockLen: 6,
		RegionBlocks: 12, CodeZipf: 0.9,
		FlakyFrac: 0.005, PatternFrac: 0.02, CallFrac: 0.1,
		TripMean: 14, MajorityProb: 0.97, PhaseJumpEvery: 45000,
		Seed: 103,
	},
	{
		Name:     "vortex",
		LoadFrac: 0.27, StoreFrac: 0.14, IntMulFrac: 0.01,
		DepP: 0.30, DepNoneFrac: 0.36,
		HotLines: 160, HotZipf: 0.80, PHot: 0.952,
		Rings:    []Ring{{Lines: 9, P: 0.030}, {Lines: 12, P: 0.008}},
		FarLines: 4000, FarZipf: 0.30, PFar: 0.008,
		SpatialRun:  3,
		ChurnPeriod: 40000, ChurnFrac: 0.08,
		CodeBlocks: 7000, BlockLen: 6,
		RegionBlocks: 12, CodeZipf: 1.3,
		FlakyFrac: 0.002, PatternFrac: 0.005, CallFrac: 0.1,
		TripMean: 45, MajorityProb: 0.995, PhaseJumpEvery: 50000,
		Seed: 104,
	},
	{
		Name:     "gap",
		LoadFrac: 0.24, StoreFrac: 0.10, IntMulFrac: 0.02, FPFrac: 0.01,
		DepP: 0.34, DepNoneFrac: 0.32,
		HotLines: 128, HotZipf: 0.80, PHot: 0.957,
		Rings:    []Ring{{Lines: 8, P: 0.020}, {Lines: 32, P: 0.010}},
		FarLines: 4000, FarZipf: 0.30, PFar: 0.010,
		SpatialRun:  3,
		ChurnPeriod: 40000, ChurnFrac: 0.08,
		CodeBlocks: 3000, BlockLen: 6,
		RegionBlocks: 12, CodeZipf: 1.0,
		FlakyFrac: 0.003, PatternFrac: 0.01, CallFrac: 0.09,
		TripMean: 25, MajorityProb: 0.99, PhaseJumpEvery: 50000,
		Seed: 105,
	},
	{
		Name:     "perl",
		LoadFrac: 0.26, StoreFrac: 0.12, IntMulFrac: 0.01,
		DepP: 0.34, DepNoneFrac: 0.32,
		HotLines: 144, HotZipf: 0.80, PHot: 0.958,
		Rings:    []Ring{{Lines: 24, P: 0.030}, {Lines: 12, P: 0.003}},
		FarLines: 3000, FarZipf: 0.30, PFar: 0.007,
		SpatialRun:  2,
		ChurnPeriod: 30000, ChurnFrac: 0.08,
		CodeBlocks: 6000, BlockLen: 6,
		RegionBlocks: 12, CodeZipf: 1.3,
		FlakyFrac: 0.005, PatternFrac: 0.02, CallFrac: 0.1,
		TripMean: 16, MajorityProb: 0.98, PhaseJumpEvery: 35000,
		Seed: 106,
	},
	{
		Name:     "twolf",
		LoadFrac: 0.26, StoreFrac: 0.08, IntMulFrac: 0.02, FPFrac: 0.02,
		DepP: 0.42, DepNoneFrac: 0.26,
		HotLines: 96, HotZipf: 0.60, PHot: 0.893,
		Rings:    []Ring{{Lines: 22, P: 0.040}, {Lines: 14, P: 0.005}},
		FarLines: 3000, FarZipf: 0.20, PFar: 0.060,
		SpatialRun:  1,
		ChurnPeriod: 25000, ChurnFrac: 0.12,
		CodeBlocks: 1500, BlockLen: 5,
		RegionBlocks: 10, CodeZipf: 0.8,
		FlakyFrac: 0.15, PatternFrac: 0.04, CallFrac: 0.06,
		TripMean: 8, MajorityProb: 0.94, PhaseJumpEvery: 30000,
		Seed: 107,
	},
	{
		Name:     "bzip2",
		LoadFrac: 0.25, StoreFrac: 0.10, IntMulFrac: 0.01,
		DepP: 0.34, DepNoneFrac: 0.32,
		HotLines: 112, HotZipf: 0.75, PHot: 0.956,
		Rings:    []Ring{{Lines: 10, P: 0.020}, {Lines: 24, P: 0.008}},
		FarLines: 4000, FarZipf: 0.30, PFar: 0.010,
		SpatialRun:  5,
		ChurnPeriod: 45000, ChurnFrac: 0.06,
		CodeBlocks: 900, BlockLen: 6,
		RegionBlocks: 12, CodeZipf: 0.9,
		FlakyFrac: 0.04, PatternFrac: 0.04, CallFrac: 0.04,
		TripMean: 14, MajorityProb: 0.95, PhaseJumpEvery: 55000,
		Seed: 108,
	},
	{
		Name:     "vpr",
		LoadFrac: 0.26, StoreFrac: 0.09, IntMulFrac: 0.02, FPFrac: 0.03,
		DepP: 0.40, DepNoneFrac: 0.28,
		HotLines: 96, HotZipf: 0.70, PHot: 0.930,
		Rings:    []Ring{{Lines: 9, P: 0.030}, {Lines: 16, P: 0.012}},
		FarLines: 3000, FarZipf: 0.25, PFar: 0.025,
		SpatialRun:  2,
		ChurnPeriod: 30000, ChurnFrac: 0.10,
		CodeBlocks: 1800, BlockLen: 6,
		RegionBlocks: 12, CodeZipf: 0.8,
		FlakyFrac: 0.06, PatternFrac: 0.04, CallFrac: 0.07,
		TripMean: 10, MajorityProb: 0.94, PhaseJumpEvery: 35000,
		Seed: 109,
	},
	{
		Name:     "mcf",
		LoadFrac: 0.30, StoreFrac: 0.09, IntMulFrac: 0.01,
		DepP: 0.50, DepNoneFrac: 0.22,
		HotLines: 64, HotZipf: 0.80, PHot: 0.785,
		Rings:    []Ring{{Lines: 4, P: 0.020}},
		FarLines: 26000, FarZipf: 0.25, PFar: 0.180,
		SpatialRun:  1,
		ChurnPeriod: 15000, ChurnFrac: 0.15,
		CodeBlocks: 500, BlockLen: 6,
		RegionBlocks: 12, CodeZipf: 1.0,
		FlakyFrac: 0.08, PatternFrac: 0.03, CallFrac: 0.04,
		TripMean: 10, MajorityProb: 0.94, PhaseJumpEvery: 40000,
		Seed: 110,
	},
	{
		Name:     "crafty",
		LoadFrac: 0.27, StoreFrac: 0.08, IntMulFrac: 0.02,
		DepP: 0.28, DepNoneFrac: 0.38,
		HotLines: 200, HotZipf: 0.85, PHot: 0.964,
		Rings:    []Ring{{Lines: 7, P: 0.020}, {Lines: 56, P: 0.008}},
		FarLines: 6000, FarZipf: 0.30, PFar: 0.006,
		SpatialRun:  2,
		ChurnPeriod: 60000, ChurnFrac: 0.04,
		CodeBlocks: 3500, BlockLen: 6,
		RegionBlocks: 12, CodeZipf: 1.2,
		FlakyFrac: 0.02, PatternFrac: 0.02, CallFrac: 0.09,
		TripMean: 12, MajorityProb: 0.97, PhaseJumpEvery: 45000,
		Seed: 111,
	},
}

// Names returns the benchmark names in the paper's Table 3 order.
func Names() []string {
	out := make([]string, len(profileTable))
	for i, p := range profileTable {
		out[i] = p.Name
	}
	return out
}

// Profiles returns a copy of the 11 benchmark profiles in Table 3 order.
func Profiles() []Profile {
	out := make([]Profile, len(profileTable))
	copy(out, profileTable)
	return out
}

// ByName returns the profile with the given name and whether it exists.
func ByName(name string) (Profile, bool) {
	for _, p := range profileTable {
		if p.Name == name {
			return p, true
		}
	}
	return Profile{}, false
}
