package stream

import (
	"fmt"
	"sync"
	"testing"
	"time"

	"hotleakage/internal/obs"
)

// TestHubRingOverflow: more events than BufCap wrap the ring; a late
// subscriber replays exactly the newest BufCap events, in order.
func TestHubRingOverflow(t *testing.T) {
	h := NewHub()
	const n = BufCap + 300
	for i := 0; i < n; i++ {
		h.Write(obs.Record{Type: "run_done", Detail: fmt.Sprintf("ev-%d", i)})
	}
	replay, ch, cancel := h.Subscribe()
	defer cancel()
	if len(replay) != BufCap {
		t.Fatalf("replay length %d, want %d", len(replay), BufCap)
	}
	for i, rec := range replay {
		want := fmt.Sprintf("ev-%d", n-BufCap+i)
		if rec.Detail != want {
			t.Fatalf("replay[%d] = %s, want %s (oldest-first ring order)", i, rec.Detail, want)
		}
	}
	select {
	case <-ch:
		t.Fatal("live channel has events before any post-subscribe write")
	default:
	}
}

// TestHubSlowConsumerDrops: a subscriber that never drains loses events —
// Write must not block even when the subscriber channel is full.
func TestHubSlowConsumerDrops(t *testing.T) {
	h := NewHub()
	_, ch, cancel := h.Subscribe()
	defer cancel()

	done := make(chan struct{})
	go func() {
		defer close(done)
		// subBufCap fills the channel; the rest must be dropped, not block.
		for i := 0; i < subBufCap+1000; i++ {
			h.Write(obs.Record{Type: "run_done", Detail: fmt.Sprintf("ev-%d", i)})
		}
	}()
	select {
	case <-done:
	case <-time.After(10 * time.Second):
		t.Fatal("Write blocked on an undrained subscriber")
	}
	if got := len(ch); got != subBufCap {
		t.Errorf("stalled subscriber holds %d events, want %d (rest dropped)", got, subBufCap)
	}
	// The hub itself kept everything the ring can hold.
	replay, _, cancel2 := h.Subscribe()
	defer cancel2()
	if len(replay) != subBufCap+1000 {
		t.Errorf("replay length %d, want %d", len(replay), subBufCap+1000)
	}
}

// TestHubCloseSemantics: close is idempotent, live channels close, writes
// after close are dropped, and post-close subscribers still get the replay
// with an already-closed channel.
func TestHubCloseSemantics(t *testing.T) {
	h := NewHub()
	h.Write(obs.Record{Type: "sweep_start"})
	_, live, cancel := h.Subscribe()
	defer cancel()
	h.Close()
	h.Close() // idempotent
	if _, open := <-live; open {
		t.Fatal("live channel still open after hub close")
	}
	h.Write(obs.Record{Type: "dropped"})
	replay, ch, _ := h.Subscribe()
	if len(replay) != 1 || replay[0].Type != "sweep_start" {
		t.Fatalf("post-close replay %v, want the single pre-close event", replay)
	}
	if _, open := <-ch; open {
		t.Fatal("post-close subscriber channel not closed")
	}
}

// TestHubConcurrentChurn hammers Subscribe/cancel/Write/Close from many
// goroutines; run under -race this pins the locking discipline.
func TestHubConcurrentChurn(t *testing.T) {
	h := NewHub()
	var wg sync.WaitGroup
	stop := make(chan struct{})
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; ; i++ {
				select {
				case <-stop:
					return
				default:
					h.Write(obs.Record{Type: "run_done", Attempt: i})
				}
			}
		}()
	}
	for s := 0; s < 4; s++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				_, ch, cancel := h.Subscribe()
				for j := 0; j < 10; j++ {
					select {
					case <-ch:
					default:
					}
				}
				cancel()
			}
		}()
	}
	time.Sleep(20 * time.Millisecond)
	close(stop)
	wg.Wait()
	h.Close()
}
