// Package stream is the event-fanout layer shared by leakd's single-node
// server and the cluster coordinator: a per-sweep Hub that implements
// harness.EventSink, keeps a bounded replay ring for late subscribers, and
// fans live records out to SSE handlers. The coordinator additionally uses
// it as the merge point for per-shard worker streams — every worker's SSE
// events are written into the client-facing sweep's Hub, so a cluster
// sweep's event stream looks exactly like a single-node one.
package stream

import (
	"encoding/json"
	"fmt"
	"net/http"
	"sync"
	"time"

	"hotleakage/internal/obs"
)

// BufCap bounds each sweep's replay buffer: late SSE subscribers see at
// most the last BufCap events. Oldest events are dropped first.
const BufCap = 4096

// subBufCap is the per-subscriber channel depth; a subscriber that cannot
// drain (stalled TCP peer) loses events rather than stalling the sweep.
const subBufCap = 256

// Hub fans a sweep's trace events out to SSE subscribers while keeping a
// bounded replay buffer so a subscriber attaching mid-sweep (or after it
// finished) still sees the history. It implements harness.EventSink, so the
// supervisor's run_start/run_done/checkpoint/store_hit records flow through
// unchanged — the SSE stream is the harness trace, joined by run key.
type Hub struct {
	mu     sync.Mutex
	buf    []obs.Record
	start  int // ring read index into buf once full
	subs   map[chan obs.Record]struct{}
	closed bool
}

// NewHub returns an open hub with no subscribers.
func NewHub() *Hub {
	return &Hub{subs: make(map[chan obs.Record]struct{})}
}

// Write implements harness.EventSink. Safe for concurrent use; never
// blocks — slow subscribers drop events.
func (h *Hub) Write(rec obs.Record) {
	if rec.Time.IsZero() {
		rec.Time = time.Now()
	}
	h.mu.Lock()
	defer h.mu.Unlock()
	if h.closed {
		return
	}
	if len(h.buf) < BufCap {
		h.buf = append(h.buf, rec)
	} else {
		h.buf[h.start] = rec
		h.start = (h.start + 1) % BufCap
	}
	for ch := range h.subs {
		select {
		case ch <- rec:
		default:
		}
	}
}

// Subscribe returns the replay history in order plus a live channel. The
// channel is closed when the hub closes (sweep finished); cancel detaches
// the subscriber. On an already-closed hub the channel comes back closed,
// so callers uniformly replay then drain.
func (h *Hub) Subscribe() (replay []obs.Record, ch chan obs.Record, cancel func()) {
	h.mu.Lock()
	defer h.mu.Unlock()
	replay = make([]obs.Record, 0, len(h.buf))
	replay = append(replay, h.buf[h.start:]...)
	replay = append(replay, h.buf[:h.start]...)
	ch = make(chan obs.Record, subBufCap)
	if h.closed {
		close(ch)
		return replay, ch, func() {}
	}
	h.subs[ch] = struct{}{}
	return replay, ch, func() {
		h.mu.Lock()
		defer h.mu.Unlock()
		if _, ok := h.subs[ch]; ok {
			delete(h.subs, ch)
		}
	}
}

// Close ends the stream: subscriber channels are closed (their SSE handlers
// return after draining) and further writes are dropped. The replay buffer
// stays readable for late subscribers. Idempotent.
func (h *Hub) Close() {
	h.mu.Lock()
	defer h.mu.Unlock()
	if h.closed {
		return
	}
	h.closed = true
	for ch := range h.subs {
		close(ch)
		delete(h.subs, ch)
	}
}

// WriteSSE renders one record as a server-sent event.
func WriteSSE(w http.ResponseWriter, rec obs.Record) error {
	data, err := json.Marshal(rec)
	if err != nil {
		return err
	}
	_, err = fmt.Fprintf(w, "event: %s\ndata: %s\n\n", rec.Type, data)
	return err
}

// ServeSSE streams the hub over w as server-sent events: the replay
// history first, then live records until the hub closes or the request's
// context ends. It owns the response headers and the flush cadence.
func ServeSSE(w http.ResponseWriter, r *http.Request, h *Hub) error {
	fl, ok := w.(http.Flusher)
	if !ok {
		return fmt.Errorf("stream: response writer cannot flush")
	}
	w.Header().Set("Content-Type", "text/event-stream")
	w.Header().Set("Cache-Control", "no-cache")
	w.Header().Set("X-Accel-Buffering", "no")
	w.WriteHeader(http.StatusOK)

	replay, ch, cancel := h.Subscribe()
	defer cancel()
	for _, rec := range replay {
		if err := WriteSSE(w, rec); err != nil {
			return err
		}
	}
	fl.Flush()
	for {
		select {
		case rec, open := <-ch:
			if !open {
				return nil // hub closed; history already flushed
			}
			if err := WriteSSE(w, rec); err != nil {
				return err
			}
			fl.Flush()
		case <-r.Context().Done():
			return nil
		}
	}
}
