package obs

import (
	"context"
	"encoding/json"
	"expvar"
	"fmt"
	"net"
	"net/http"
	"sync"
	"time"
)

// publishOnce guards the expvar registration: expvar.Publish panics on
// duplicate names, and Serve may be called once per binary but tests may
// spin up several servers against the same process.
var publishOnce sync.Once

// ShutdownTimeout bounds how long a graceful HTTP shutdown waits for
// in-flight requests before the listener is torn down anyway.
const ShutdownTimeout = 5 * time.Second

// HardenedServer wraps h in an http.Server with production limits: a
// header-read deadline (so an idle or trickling client cannot pin a
// connection pre-request), a body-read deadline, an idle keep-alive
// deadline and a header size cap. WriteTimeout is deliberately left zero —
// the daemon's SSE progress streams and long result downloads are
// legitimate slow writes; per-request deadlines belong to the handlers.
// Both the metrics endpoint here and internal/server build on this one
// constructor so the hardening cannot drift apart.
func HardenedServer(h http.Handler) *http.Server {
	return &http.Server{
		Handler:           h,
		ReadHeaderTimeout: 5 * time.Second,
		ReadTimeout:       30 * time.Second,
		IdleTimeout:       2 * time.Minute,
		MaxHeaderBytes:    1 << 20,
	}
}

// Shutdown gracefully stops srv: in-flight requests get ShutdownTimeout to
// complete, then the server is closed outright. Safe to call from defer.
func Shutdown(srv *http.Server) {
	ctx, cancel := context.WithTimeout(context.Background(), ShutdownTimeout)
	defer cancel()
	if err := srv.Shutdown(ctx); err != nil {
		_ = srv.Close()
	}
}

// Serve exposes reg for scraping on addr:
//
//	/metrics     Prometheus text exposition format
//	/debug/vars  standard expvar JSON (the registry is published under
//	             the "obs" key alongside the runtime's memstats/cmdline)
//
// It returns the bound listener address (useful with ":0") and a shutdown
// func. Handler errors never affect the simulation: the server runs on its
// own goroutine and shutdown drains in-flight scrapes for at most
// ShutdownTimeout before closing.
func Serve(addr string, reg *Registry) (string, func(), error) {
	if reg == nil {
		reg = Default
	}
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return "", nil, fmt.Errorf("obs: metrics listener: %w", err)
	}
	publishOnce.Do(func() {
		expvar.Publish("obs", expvar.Func(func() any { return Default.Snapshot() }))
	})
	mux := http.NewServeMux()
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		_ = reg.WriteProm(w)
	})
	mux.HandleFunc("/snapshot", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		_ = json.NewEncoder(w).Encode(reg.Snapshot())
	})
	mux.Handle("/debug/vars", expvar.Handler())
	srv := HardenedServer(mux)
	go func() { _ = srv.Serve(ln) }()
	return ln.Addr().String(), func() { Shutdown(srv) }, nil
}
