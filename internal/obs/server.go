package obs

import (
	"encoding/json"
	"expvar"
	"fmt"
	"net"
	"net/http"
	"sync"
)

// publishOnce guards the expvar registration: expvar.Publish panics on
// duplicate names, and Serve may be called once per binary but tests may
// spin up several servers against the same process.
var publishOnce sync.Once

// Serve exposes reg for scraping on addr:
//
//	/metrics     Prometheus text exposition format
//	/debug/vars  standard expvar JSON (the registry is published under
//	             the "obs" key alongside the runtime's memstats/cmdline)
//
// It returns the bound listener address (useful with ":0") and a shutdown
// func. Handler errors never affect the simulation: the server runs on its
// own goroutine and shutdown is best-effort.
func Serve(addr string, reg *Registry) (string, func(), error) {
	if reg == nil {
		reg = Default
	}
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return "", nil, fmt.Errorf("obs: metrics listener: %w", err)
	}
	publishOnce.Do(func() {
		expvar.Publish("obs", expvar.Func(func() any { return Default.Snapshot() }))
	})
	mux := http.NewServeMux()
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		_ = reg.WriteProm(w)
	})
	mux.HandleFunc("/snapshot", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		_ = json.NewEncoder(w).Encode(reg.Snapshot())
	})
	mux.Handle("/debug/vars", expvar.Handler())
	srv := &http.Server{Handler: mux}
	go func() { _ = srv.Serve(ln) }()
	return ln.Addr().String(), func() { _ = srv.Close() }, nil
}
