package obs

import (
	"fmt"
	"io"
	"time"
)

// SamplerConfig controls StartSampler.
type SamplerConfig struct {
	Registry *Registry     // registry to snapshot; Default if nil
	Interval time.Duration // snapshot period; default 2s
	Trace    *TraceWriter  // JSONL sink for "snapshot" records (may be nil)
	Progress io.Writer     // single-line live display (may be nil)
}

// Sampler periodically snapshots a registry, derives rates (instr/s) and
// sweep progress (cells done/planned, ETA) from the well-known metrics,
// writes a "snapshot" telemetry record, and repaints a single-line progress
// display using a carriage return (no scrollback spam on a terminal).
type Sampler struct {
	cfg  SamplerConfig
	stop chan struct{}
	done chan struct{}
}

// StartSampler launches the sampling goroutine. Call Stop to flush a final
// sample and wait for it to exit.
func StartSampler(cfg SamplerConfig) *Sampler {
	if cfg.Registry == nil {
		cfg.Registry = Default
	}
	if cfg.Interval <= 0 {
		cfg.Interval = 2 * time.Second
	}
	s := &Sampler{cfg: cfg, stop: make(chan struct{}), done: make(chan struct{})}
	go s.loop()
	return s
}

// Stop takes one last sample, terminates the progress line with a newline,
// and waits for the goroutine to exit. Safe to call once.
func (s *Sampler) Stop() {
	close(s.stop)
	<-s.done
}

func (s *Sampler) loop() {
	defer close(s.done)
	tick := time.NewTicker(s.cfg.Interval)
	defer tick.Stop()
	start := time.Now()
	prevInstr := s.cfg.Registry.Snapshot().Counter(MetricInstructions)
	prevAt := start
	for {
		var final bool
		select {
		case <-tick.C:
		case <-s.stop:
			final = true
		}
		now := time.Now()
		snap := s.cfg.Registry.Snapshot()

		instr := snap.Counter(MetricInstructions)
		dt := now.Sub(prevAt).Seconds()
		var rate float64
		if dt > 0 {
			rate = float64(Delta(instr, prevInstr)) / dt
		}
		prevInstr, prevAt = instr, now

		done := int64(snap.Counter(MetricRunsCompleted) + snap.Counter(MetricRunsFailed) + snap.Counter(MetricCheckpointHits))
		planned := snap.Gauge(GaugeCellsPlanned)
		var eta float64
		if done > 0 && planned > done {
			perCell := now.Sub(start).Seconds() / float64(done)
			eta = perCell * float64(planned-done)
		}

		s.cfg.Trace.Write(Record{
			Type:     "snapshot",
			Time:     now,
			Snapshot: &snap,
			InstrPS:  rate,
			Done:     done,
			Planned:  planned,
			ETASec:   eta,
		})
		if s.cfg.Progress != nil {
			line := fmt.Sprintf("cells %d/%d  %s instr/s  elapsed %s",
				done, planned, humanRate(rate), now.Sub(start).Truncate(time.Second))
			if eta > 0 {
				line += fmt.Sprintf("  eta %s", (time.Duration(eta) * time.Second).Truncate(time.Second))
			}
			if final {
				fmt.Fprintf(s.cfg.Progress, "\r\033[K%s\n", line)
			} else {
				fmt.Fprintf(s.cfg.Progress, "\r\033[K%s", line)
			}
		}
		if final {
			return
		}
	}
}

func humanRate(v float64) string {
	switch {
	case v >= 1e6:
		return fmt.Sprintf("%.2fM", v/1e6)
	case v >= 1e3:
		return fmt.Sprintf("%.1fk", v/1e3)
	default:
		return fmt.Sprintf("%.0f", v)
	}
}
