package obs_test

import (
	"strings"
	"testing"

	"hotleakage/internal/obs"

	// Linked for their package-level counter registrations — the same
	// packages any leakd or leakbench binary links, so this audit proves
	// the daemon's /metrics carries every counter family below even
	// before the first sweep increments it.
	_ "hotleakage/internal/attack"
	_ "hotleakage/internal/cluster"
	_ "hotleakage/internal/cpu"
	_ "hotleakage/internal/server"
	_ "hotleakage/internal/sim"
)

// TestPromEndpointCarriesAllCounterFamilies pins that every counter the
// subsystems register eagerly actually renders on the Prometheus text
// endpoint (value 0 before first use — absent is the bug this guards
// against: a counter that only appears after it first fires is invisible
// to dashboards and alerts that need to see it at zero).
func TestPromEndpointCarriesAllCounterFamilies(t *testing.T) {
	var sb strings.Builder
	if err := obs.Default.WriteProm(&sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	want := []string{
		// Security subsystem (internal/attack + internal/channel metrics).
		obs.MetricAttackRuns,
		obs.MetricAttackTrials,
		obs.MetricAttackProbes,
		obs.MetricChannelObserved,
		obs.MetricChannelEstimates,
		// Core pipeline self-profile and batch front fill.
		"sim_stage_tick_ns_total",
		"sim_stage_commit_ns_total",
		"sim_stage_issue_ns_total",
		"sim_stage_dispatch_ns_total",
		"sim_stage_fetch_ns_total",
		"sim_stage_sampled_cycles_total",
		"sim_front_fill_trace_total",
		"sim_front_fill_live_total",
		// Lockstep batching.
		obs.MetricBatchGroups,
		obs.MetricBatchLanes,
		obs.MetricBatchScalarFallback,
		// Store, federation, cluster.
		obs.MetricStoreHits,
		obs.MetricStoreMisses,
		obs.MetricFederationHits,
		obs.MetricFederationMisses,
		obs.MetricClusterShards,
		obs.MetricClusterSteals,
		obs.MetricClusterReshards,
		obs.MetricClusterWorkerDeaths,
		obs.MetricClusterCellsAcked,
		// Daemon admission.
		obs.MetricSweepsAccepted,
		obs.MetricSweepsRejected,
		obs.MetricSweepsCompleted,
	}
	for _, name := range want {
		if !strings.Contains(out, "\n"+name+" ") && !strings.HasPrefix(out, name+" ") {
			t.Errorf("/metrics is missing %s", name)
		}
	}
}
