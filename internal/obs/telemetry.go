package obs

import (
	"encoding/json"
	"fmt"
	"io"
	"sync"
	"time"
)

// Record is one JSONL telemetry line. Every record carries a Type
// discriminator ("snapshot" for sampler output; event types such as
// "run_start", "run_retry", "run_fault", "run_done", "run_error",
// "checkpoint_hit" for harness traces) and a wall-clock timestamp. Event
// records carry the RunID — the harness job key, which is also the
// checkpoint key — so telemetry joins against checkpoint records directly.
type Record struct {
	Type string    `json:"type"`
	Time time.Time `json:"time"`

	// Event fields.
	RunID   string `json:"run_id,omitempty"`
	Attempt int    `json:"attempt,omitempty"`
	Error   string `json:"error,omitempty"`
	Detail  string `json:"detail,omitempty"`

	// Snapshot fields.
	Snapshot *Snapshot `json:"metrics,omitempty"`
	InstrPS  float64   `json:"instr_per_s,omitempty"`
	Done     int64     `json:"cells_done,omitempty"`
	Planned  int64     `json:"cells_planned,omitempty"`
	ETASec   float64   `json:"eta_s,omitempty"`
}

// TraceWriter serializes Records as JSON lines to an io.Writer. It is safe
// for concurrent use (the harness emits events from worker goroutines while
// the sampler emits snapshots).
type TraceWriter struct {
	mu  sync.Mutex
	w   io.Writer
	enc *json.Encoder
	err error
}

// NewTraceWriter wraps w. The caller owns closing the underlying writer.
func NewTraceWriter(w io.Writer) *TraceWriter {
	return &TraceWriter{w: w, enc: json.NewEncoder(w)}
}

// Write appends one record. Encoding errors are sticky: the first one is
// retained and returned by Err, and later writes become no-ops, so a full
// disk degrades telemetry rather than the sweep.
func (t *TraceWriter) Write(rec Record) {
	if t == nil {
		return
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	if t.err != nil {
		return
	}
	if rec.Time.IsZero() {
		rec.Time = time.Now()
	}
	if err := t.enc.Encode(rec); err != nil {
		t.err = fmt.Errorf("obs: telemetry write: %w", err)
	}
}

// Err reports the first write error, if any.
func (t *TraceWriter) Err() error {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.err
}
