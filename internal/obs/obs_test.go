package obs

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"strings"
	"sync"
	"testing"
	"time"
)

func TestCounterRegistrationIdempotent(t *testing.T) {
	r := NewRegistry()
	a := r.Counter("x_total")
	b := r.Counter("x_total")
	if a.ID() != b.ID() {
		t.Fatalf("same name registered twice: ids %d and %d", a.ID(), b.ID())
	}
	c := r.Counter("y_total")
	if c.ID() == a.ID() {
		t.Fatalf("distinct names share id %d", c.ID())
	}
}

func TestShardAccumulateAndRelease(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("instr_total")
	sh := r.AcquireShard()
	sh.Add(c.ID(), 100)
	sh.Add(c.ID(), 50)
	if got := r.Snapshot().Counter("instr_total"); got != 150 {
		t.Fatalf("live shard snapshot = %d, want 150", got)
	}
	sh.Release()
	if got := r.Snapshot().Counter("instr_total"); got != 150 {
		t.Fatalf("after release = %d, want 150 (retired fold)", got)
	}
	// Reacquired shard must come back zeroed.
	sh2 := r.AcquireShard()
	sh2.Add(c.ID(), 1)
	if got := r.Snapshot().Counter("instr_total"); got != 151 {
		t.Fatalf("pooled shard not zeroed: snapshot = %d, want 151", got)
	}
	sh2.Release()
}

func TestBaseShardAndGauges(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("retries_total")
	c.Add(3)
	c.Add(0) // no-op
	g := r.Gauge("cells_planned")
	g.Set(40)
	g.Add(2)
	snap := r.Snapshot()
	if snap.Counter("retries_total") != 3 {
		t.Fatalf("base counter = %d, want 3", snap.Counter("retries_total"))
	}
	if snap.Gauge("cells_planned") != 42 {
		t.Fatalf("gauge = %d, want 42", snap.Gauge("cells_planned"))
	}
	if r.Gauge("cells_planned") != g {
		t.Fatal("gauge registration not idempotent")
	}
}

// TestConcurrentShardsAndSnapshots is the -race workout: many shard owners
// flushing while snapshots and base-shard adds run concurrently.
func TestConcurrentShardsAndSnapshots(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("work_total")
	ev := r.Counter("events_total")
	const workers, perWorker = 8, 2000
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			sh := r.AcquireShard()
			for i := 0; i < perWorker; i++ {
				sh.Add(c.ID(), 1)
				if i%100 == 0 {
					ev.Add(1)
				}
			}
			sh.Release()
		}()
	}
	stop := make(chan struct{})
	var snapWG sync.WaitGroup
	snapWG.Add(1)
	go func() {
		defer snapWG.Done()
		for {
			select {
			case <-stop:
				return
			default:
				_ = r.Snapshot()
			}
		}
	}()
	wg.Wait()
	close(stop)
	snapWG.Wait()
	if got := r.Snapshot().Counter("work_total"); got != workers*perWorker {
		t.Fatalf("merged total = %d, want %d", got, workers*perWorker)
	}
	if got := r.Snapshot().Counter("events_total"); got != workers*(perWorker/100) {
		t.Fatalf("event total = %d, want %d", got, workers*(perWorker/100))
	}
}

func TestDeltaSaturates(t *testing.T) {
	if Delta(10, 3) != 7 {
		t.Fatal("plain delta broken")
	}
	// Source was reset (warmup ResetStats): cur < prev must not underflow.
	if Delta(5, 100) != 5 {
		t.Fatalf("reset delta = %d, want 5", Delta(5, 100))
	}
}

func TestWriteProm(t *testing.T) {
	r := NewRegistry()
	r.Counter("b_total").Add(2)
	r.Counter("a_total").Add(1)
	r.Gauge("g").Set(-7)
	var buf bytes.Buffer
	if err := r.WriteProm(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	wantOrder := []string{"# TYPE a_total counter", "a_total 1", "# TYPE b_total counter", "b_total 2", "# TYPE g gauge", "g -7"}
	idx := -1
	for _, want := range wantOrder {
		i := strings.Index(out, want)
		if i < 0 {
			t.Fatalf("missing %q in:\n%s", want, out)
		}
		if i < idx {
			t.Fatalf("%q out of order in:\n%s", want, out)
		}
		idx = i
	}
}

func TestTraceWriterJSONL(t *testing.T) {
	var buf bytes.Buffer
	tw := NewTraceWriter(&buf)
	tw.Write(Record{Type: "run_retry", RunID: "gcc/11/drowsy/4096", Attempt: 2, Error: "boom"})
	tw.Write(Record{Type: "snapshot", InstrPS: 5.9e6})
	if err := tw.Err(); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(buf.String()), "\n")
	if len(lines) != 2 {
		t.Fatalf("got %d lines, want 2", len(lines))
	}
	var rec Record
	if err := json.Unmarshal([]byte(lines[0]), &rec); err != nil {
		t.Fatal(err)
	}
	if rec.Type != "run_retry" || rec.RunID != "gcc/11/drowsy/4096" || rec.Attempt != 2 {
		t.Fatalf("roundtrip mismatch: %+v", rec)
	}
	if rec.Time.IsZero() {
		t.Fatal("timestamp not stamped")
	}
	// Nil receiver must be a safe no-op (telemetry disabled).
	var nilTW *TraceWriter
	nilTW.Write(Record{Type: "snapshot"})
	if nilTW.Err() != nil {
		t.Fatal("nil TraceWriter should report no error")
	}
}

type failWriter struct{ n int }

func (f *failWriter) Write(p []byte) (int, error) {
	f.n++
	return 0, fmt.Errorf("disk full")
}

func TestTraceWriterStickyError(t *testing.T) {
	fw := &failWriter{}
	tw := NewTraceWriter(fw)
	tw.Write(Record{Type: "snapshot"})
	tw.Write(Record{Type: "snapshot"})
	if tw.Err() == nil {
		t.Fatal("expected sticky error")
	}
	if fw.n != 1 {
		t.Fatalf("writer called %d times after error, want 1", fw.n)
	}
}

func TestSamplerEmitsSnapshotsAndProgress(t *testing.T) {
	r := NewRegistry()
	instr := r.Counter(MetricInstructions)
	done := r.Counter(MetricRunsCompleted)
	r.Gauge(GaugeCellsPlanned).Set(4)
	var traceBuf, progBuf syncBuffer
	s := StartSampler(SamplerConfig{
		Registry: r,
		Interval: 10 * time.Millisecond,
		Trace:    NewTraceWriter(&traceBuf),
		Progress: &progBuf,
	})
	instr.Add(500_000)
	done.Add(1)
	time.Sleep(50 * time.Millisecond)
	s.Stop()

	lines := strings.Split(strings.TrimSpace(traceBuf.String()), "\n")
	if len(lines) < 2 {
		t.Fatalf("expected >=2 snapshot lines, got %d", len(lines))
	}
	var rec Record
	if err := json.Unmarshal([]byte(lines[len(lines)-1]), &rec); err != nil {
		t.Fatal(err)
	}
	if rec.Type != "snapshot" {
		t.Fatalf("type = %q, want snapshot", rec.Type)
	}
	if rec.Snapshot == nil || rec.Snapshot.Counter(MetricInstructions) != 500_000 {
		t.Fatalf("snapshot metrics missing or wrong: %+v", rec.Snapshot)
	}
	if rec.Planned != 4 || rec.Done != 1 {
		t.Fatalf("progress fields: done=%d planned=%d, want 1/4", rec.Done, rec.Planned)
	}
	prog := progBuf.String()
	if !strings.Contains(prog, "cells 1/4") {
		t.Fatalf("progress line missing cell count: %q", prog)
	}
	if !strings.HasSuffix(prog, "\n") {
		t.Fatal("final progress repaint should end with newline")
	}
}

func TestServeMetricsEndpoint(t *testing.T) {
	r := NewRegistry()
	r.Counter("scrape_total").Add(9)
	r.Gauge("temperature").Set(110)
	addr, shutdown, err := Serve("127.0.0.1:0", r)
	if err != nil {
		t.Fatal(err)
	}
	defer shutdown()

	get := func(path string) string {
		resp, err := http.Get("http://" + addr + path)
		if err != nil {
			t.Fatalf("GET %s: %v", path, err)
		}
		defer resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("GET %s: status %d", path, resp.StatusCode)
		}
		b, err := io.ReadAll(resp.Body)
		if err != nil {
			t.Fatal(err)
		}
		return string(b)
	}

	metrics := get("/metrics")
	if !strings.Contains(metrics, "scrape_total 9") || !strings.Contains(metrics, "temperature 110") {
		t.Fatalf("/metrics missing values:\n%s", metrics)
	}
	var snap Snapshot
	if err := json.Unmarshal([]byte(get("/snapshot")), &snap); err != nil {
		t.Fatal(err)
	}
	if snap.Counter("scrape_total") != 9 {
		t.Fatalf("/snapshot counter = %d, want 9", snap.Counter("scrape_total"))
	}
	if !strings.Contains(get("/debug/vars"), "\"obs\"") {
		t.Fatal("/debug/vars missing obs expvar")
	}
}

// syncBuffer is a mutex-guarded bytes.Buffer: the sampler goroutine writes
// while the test reads.
type syncBuffer struct {
	mu  sync.Mutex
	buf bytes.Buffer
}

func (b *syncBuffer) Write(p []byte) (int, error) {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.buf.Write(p)
}

func (b *syncBuffer) String() string {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.buf.String()
}
