// Package obs is the always-on observability layer: a counter/gauge
// registry the simulation packages (cpu, cache, leakctl, harness) register
// into, a JSONL telemetry/trace writer, a periodic snapshot sampler with a
// live progress display, and a Prometheus-style text exposition endpoint —
// everything needed to watch a multi-hour leakbench sweep like a production
// service instead of a black box.
//
// # Design: sharded counters, merged on snapshot
//
// The simulate loop commits ~6M instructions per second per worker; a
// per-event atomic increment on a shared counter would serialize the
// workers on cache-line ping-pong and perturb the hot path the fast-forward
// optimization fought for. Counters are therefore sharded: each simulating
// goroutine acquires a private Shard (a padded array indexed by CounterID)
// and adds *batched deltas* to it at chunk boundaries — sim.RunOneFrom
// flushes its components' existing Stats structs into the shard every
// runChunk (50K) committed instructions, so the per-cycle and
// per-instruction paths never touch obs at all. A snapshot merges all
// shards (plus the totals of released shards) under the registry lock.
//
// Shard slots are atomic.Uint64 so the sampler's reads are race-free, but
// only the owning goroutine writes a shard, and only ~20 times per million
// simulated instructions — the atomics are off the hot path by
// construction, not by luck.
//
// Gauges and the direct Counter.Add path are for low-frequency events
// (suite progress, harness retries/faults) where a shared atomic is fine.
package obs

import (
	"fmt"
	"io"
	"sort"
	"sync"
	"sync/atomic"
)

// CounterID indexes a registered counter within every Shard.
type CounterID int

// maxCounters bounds the registry so shards can be fixed-size arrays that
// are never reallocated (a growing slice would race with snapshot reads).
// The whole stack registers a few dozen counters; hitting this limit is a
// programming error, reported by panic at registration time.
const maxCounters = 512

// shardPad is the number of leading/trailing slots left unused in each
// shard's value array so two shards never share a cache line even when the
// allocator places them adjacently (8 slots × 8 bytes = 64 B).
const shardPad = 8

// Registry holds named counters and gauges. The zero value is not usable;
// use NewRegistry or the package-level Default.
type Registry struct {
	mu       sync.Mutex
	names    []string // by CounterID
	index    map[string]CounterID
	shards   []*Shard // every live acquired shard
	free     []*Shard // released shards available for reuse
	retired  []uint64 // totals folded in from released shards
	gauges   []*Gauge
	gaugeIdx map[string]*Gauge

	// base is the shard behind Counter.Add: shared by all goroutines,
	// written with atomic adds. Fine for low-frequency events.
	base *Shard
}

// Default is the process-wide registry the simulation packages register
// into. Tests that need isolation construct their own with NewRegistry.
var Default = NewRegistry()

// NewRegistry builds an empty registry.
func NewRegistry() *Registry {
	r := &Registry{
		index:    make(map[string]CounterID),
		gaugeIdx: make(map[string]*Gauge),
		retired:  make([]uint64, 0, 64),
	}
	r.base = newShard(r)
	return r
}

// Counter registers (or finds) a counter by name and returns its handle.
// Safe for concurrent use; registration is idempotent.
func (r *Registry) Counter(name string) Counter {
	r.mu.Lock()
	defer r.mu.Unlock()
	if id, ok := r.index[name]; ok {
		return Counter{r: r, id: id}
	}
	if len(r.names) >= maxCounters {
		panic(fmt.Sprintf("obs: more than %d counters registered (at %q)", maxCounters, name))
	}
	id := CounterID(len(r.names))
	r.names = append(r.names, name)
	r.index[name] = id
	r.retired = append(r.retired, 0)
	return Counter{r: r, id: id}
}

// Counter is a handle to one registered counter.
type Counter struct {
	r  *Registry
	id CounterID
}

// ID returns the counter's shard index, for use with Shard.Add.
func (c Counter) ID() CounterID { return c.id }

// Add increments the counter through the registry's shared base shard.
// This path takes an atomic RMW on a shared line — use it for events
// (retries, faults, cells), not for anything on a simulate path; bulk
// simulation counters go through a private Shard.
func (c Counter) Add(n uint64) {
	if n == 0 {
		return
	}
	c.r.base.vals[shardPad+int(c.id)].Add(n)
}

// Gauge is a named instantaneous value (set, not accumulated).
type Gauge struct {
	name string
	v    atomic.Int64
}

// Gauge registers (or finds) a gauge by name.
func (r *Registry) Gauge(name string) *Gauge {
	r.mu.Lock()
	defer r.mu.Unlock()
	if g, ok := r.gaugeIdx[name]; ok {
		return g
	}
	g := &Gauge{name: name}
	r.gauges = append(r.gauges, g)
	r.gaugeIdx[name] = g
	return g
}

// Set stores v.
func (g *Gauge) Set(v int64) { g.v.Store(v) }

// Add adjusts the gauge by d.
func (g *Gauge) Add(d int64) { g.v.Add(d) }

// Value returns the current value.
func (g *Gauge) Value() int64 { return g.v.Load() }

// Name returns the gauge's registered name.
func (g *Gauge) Name() string { return g.name }

// Shard is one goroutine's private accumulation slice over every counter.
// Only the acquiring goroutine may call Add; any goroutine may read through
// Registry.Snapshot. Release returns the shard to the registry's pool,
// folding its totals into the retired accumulator first.
type Shard struct {
	r    *Registry
	vals []atomic.Uint64 // shardPad + maxCounters + shardPad slots
}

func newShard(r *Registry) *Shard {
	return &Shard{r: r, vals: make([]atomic.Uint64, maxCounters+2*shardPad)}
}

// AcquireShard returns a zeroed shard for exclusive use by the calling
// goroutine.
func (r *Registry) AcquireShard() *Shard {
	r.mu.Lock()
	defer r.mu.Unlock()
	var s *Shard
	if n := len(r.free); n > 0 {
		s = r.free[n-1]
		r.free = r.free[:n-1]
	} else {
		s = newShard(r)
	}
	r.shards = append(r.shards, s)
	return s
}

// Add accumulates n into counter id. Owner-goroutine only.
func (s *Shard) Add(id CounterID, n uint64) {
	if n == 0 {
		return
	}
	v := &s.vals[shardPad+int(id)]
	v.Store(v.Load() + n) // single writer; atomic store keeps readers safe
}

// Release folds the shard's totals into the registry and returns it to the
// pool. The caller must not use the shard afterwards.
func (s *Shard) Release() {
	r := s.r
	r.mu.Lock()
	defer r.mu.Unlock()
	for i := range r.retired {
		v := &s.vals[shardPad+i]
		r.retired[i] += v.Load()
		v.Store(0)
	}
	for i, sh := range r.shards {
		if sh == s {
			r.shards = append(r.shards[:i], r.shards[i+1:]...)
			break
		}
	}
	r.free = append(r.free, s)
}

// Snapshot is a merged, point-in-time view of every counter and gauge.
type Snapshot struct {
	Counters map[string]uint64 `json:"counters"`
	Gauges   map[string]int64  `json:"gauges,omitempty"`
}

// Counter returns a counter's merged value (0 if absent).
func (s Snapshot) Counter(name string) uint64 { return s.Counters[name] }

// Gauge returns a gauge's value (0 if absent).
func (s Snapshot) Gauge(name string) int64 { return s.Gauges[name] }

// Snapshot merges the base shard, every live shard and the retired totals
// into one view. It holds the registry lock for the duration, which is
// fine: shard owners never take the lock on their add path.
func (r *Registry) Snapshot() Snapshot {
	r.mu.Lock()
	defer r.mu.Unlock()
	cs := make(map[string]uint64, len(r.names))
	for i, name := range r.names {
		total := r.retired[i] + r.base.vals[shardPad+i].Load()
		for _, sh := range r.shards {
			total += sh.vals[shardPad+i].Load()
		}
		cs[name] = total
	}
	gs := make(map[string]int64, len(r.gauges))
	for _, g := range r.gauges {
		gs[g.name] = g.Value()
	}
	return Snapshot{Counters: cs, Gauges: gs}
}

// WriteProm renders the registry in the Prometheus text exposition format
// (sorted by name, counters first), suitable for scraping.
func (r *Registry) WriteProm(w io.Writer) error {
	snap := r.Snapshot()
	names := make([]string, 0, len(snap.Counters))
	for n := range snap.Counters {
		names = append(names, n)
	}
	sort.Strings(names)
	for _, n := range names {
		if _, err := fmt.Fprintf(w, "# TYPE %s counter\n%s %d\n", n, n, snap.Counters[n]); err != nil {
			return err
		}
	}
	gnames := make([]string, 0, len(snap.Gauges))
	for n := range snap.Gauges {
		gnames = append(gnames, n)
	}
	sort.Strings(gnames)
	for _, n := range gnames {
		if _, err := fmt.Fprintf(w, "# TYPE %s gauge\n%s %d\n", n, n, snap.Gauges[n]); err != nil {
			return err
		}
	}
	return nil
}

// Well-known metric names the sampler's progress/ETA math looks for. The
// packages that own them register them; they are listed here so the
// contract between producer and sampler is explicit.
const (
	// MetricInstructions is the cumulative committed-instruction counter
	// flushed by internal/cpu; the sampler derives instr/s from it.
	MetricInstructions = "sim_instructions_total"
	// GaugeCellsPlanned is the number of cells the suite has planned so
	// far (internal/sim), including checkpoint-resolved ones.
	GaugeCellsPlanned = "suite_cells_planned"
	// MetricRunsCompleted / MetricRunsFailed / MetricCheckpointHits are
	// the harness's per-cell outcome counters.
	MetricRunsCompleted  = "harness_runs_completed_total"
	MetricRunsFailed     = "harness_runs_failed_total"
	MetricCheckpointHits = "harness_checkpoint_hits_total"
	// MetricWorkerBusyMS is the harness pool's cumulative busy time in
	// milliseconds summed over workers; GaugeWorkers is the pool size of
	// the most recent batch. Per-worker busy time is the gauge series
	// harness_worker_NN_busy_ms.
	MetricWorkerBusyMS = "harness_worker_busy_ms_total"
	GaugeWorkers       = "harness_workers"
	// MetricTraceCacheHits / Misses / Bytes / Wraps instrument the sweep's
	// shared instruction-trace cache (internal/sim): replays served from a
	// recorded buffer, buffers recorded, resident encoded bytes, and
	// replays discarded because the simulation consumed past the recorded
	// length (forcing a live-generation fallback).
	MetricTraceCacheHits   = "trace_cache_hits_total"
	MetricTraceCacheMisses = "trace_cache_misses_total"
	MetricTraceCacheBytes  = "trace_cache_bytes_total"
	MetricTraceCacheWraps  = "trace_cache_wraps_total"
	// MetricStoreHits / Misses count cells resolved by (or missing from)
	// the content-addressed result store (internal/sim + internal/store).
	MetricStoreHits   = "store_hits_total"
	MetricStoreMisses = "store_misses_total"
	// Daemon metrics (internal/server): instantaneous queue depth across
	// both priority classes, sweeps currently executing, and sweep
	// admission outcomes. Rejected counts 429s from a full queue and 503s
	// while draining.
	GaugeQueueDepth       = "server_queue_depth"
	GaugeSweepsInFlight   = "server_sweeps_inflight"
	MetricSweepsAccepted  = "server_sweeps_accepted_total"
	MetricSweepsRejected  = "server_sweeps_rejected_total"
	MetricSweepsCompleted = "server_sweeps_completed_total"
	// Robustness metrics: operations the fault plane actually faulted
	// (internal/harness/faultinject); records quarantined by the store's
	// corruption recovery and bytes reclaimed / records dropped by its
	// GC (internal/store); API-client retries and circuit-breaker state
	// transitions (internal/server/api); remote batches the resolution
	// ladder degraded to local simulation (internal/sim); and the
	// server's recovered handler panics, watchdog-killed sweeps, and
	// sweeps completed despite store/checkpoint trouble (internal/server).
	MetricFaultplaneInjected  = "faultplane_injected_total"
	MetricStoreQuarantined    = "store_quarantined_total"
	MetricStoreGCRuns         = "store_gc_runs_total"
	MetricStoreGCDropped      = "store_gc_dropped_total"
	MetricStoreGCReclaimedB   = "store_gc_reclaimed_bytes_total"
	MetricAPIRetries          = "api_retries_total"
	MetricAPIBreakerOpens     = "api_breaker_opens_total"
	MetricAPIBreakerFastFails = "api_breaker_fastfails_total"
	MetricRemoteDegraded      = "sim_remote_degraded_total"
	MetricServerPanics        = "server_handler_panics_total"
	MetricWatchdogTimeouts    = "server_watchdog_timeouts_total"
	MetricSweepsDegraded      = "server_sweeps_degraded_total"
	// Batched lockstep execution (internal/sim): groups executed in
	// lockstep, lanes (cells) those groups carried, cells that fell out of
	// a batch back to the scalar supervisor path, and the most recent
	// sweep's mean lanes-per-group occupancy in hundredths (e.g. 1450 =
	// 14.5 lanes/group).
	MetricBatchGroups         = "sim_batch_groups_total"
	MetricBatchLanes          = "sim_batch_lanes_total"
	MetricBatchScalarFallback = "sim_batch_scalar_fallback_total"
	GaugeBatchLaneOccupancy   = "sim_batch_lane_occupancy_x100"
	// Sweep retention (internal/server): terminal sweeps evicted from the
	// in-memory lookup maps after the retention window.
	MetricSweepsEvicted = "server_sweeps_evicted_total"
	// Store federation (internal/sim): cells a node resolved from its
	// peer's store view after a local miss, and peer lookups that missed
	// (or errored, degrading to simulation).
	MetricFederationHits   = "sim_federation_hits_total"
	MetricFederationMisses = "sim_federation_misses_total"
	// Cluster coordinator (internal/cluster): shard groups dispatched to
	// workers, groups stolen by idle workers from loaded queues, groups
	// re-sharded off a dead worker onto survivors, workers declared dead
	// mid-sweep, cells acknowledged (result fetched, verified and
	// persisted coordinator-side), and the live-worker gauge health and
	// placement read.
	MetricClusterShards       = "cluster_shards_dispatched_total"
	MetricClusterSteals       = "cluster_steals_total"
	MetricClusterReshards     = "cluster_reshards_total"
	MetricClusterWorkerDeaths = "cluster_worker_deaths_total"
	MetricClusterCellsAcked   = "cluster_cells_acked_total"
	GaugeClusterWorkersAlive  = "cluster_workers_alive"
	// Timing-leakage security subsystem (internal/attack, internal/channel):
	// adversarial scenario runs completed, prime+probe trials and individual
	// probes executed, trials recorded into empirical channel distributions,
	// and metric sets (guessing entropy / min-entropy leakage / capacity)
	// computed over them. See DESIGN.md section 14.
	MetricAttackRuns       = "attack_runs_total"
	MetricAttackTrials     = "attack_trials_total"
	MetricAttackProbes     = "attack_probes_total"
	MetricChannelObserved  = "channel_observations_total"
	MetricChannelEstimates = "channel_estimates_total"
)

// Delta returns cur-prev saturating at cur when a counter source was reset
// between flushes (warmup ResetStats), so delta flushing never underflows.
func Delta(cur, prev uint64) uint64 {
	if cur < prev {
		return cur
	}
	return cur - prev
}
