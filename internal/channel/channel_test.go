package channel

import (
	"math"
	"testing"
)

const tol = 1e-9

func close(a, b, eps float64) bool { return math.Abs(a-b) <= eps }

// A channel whose observation is independent of the secret leaks nothing:
// posterior guessing entropy equals the prior, min-entropy leakage and
// capacity are zero.
func TestUniformChannelLeaksNothing(t *testing.T) {
	j := NewJoint(4)
	for s := 0; s < 4; s++ {
		for i := 0; i < 10; i++ {
			j.Observe(s, "A")
			j.Observe(s, "B")
		}
	}
	m := j.Metrics()
	if !close(m.GuessingEntropyPrior, 2.5, tol) {
		t.Errorf("prior GE = %v, want 2.5", m.GuessingEntropyPrior)
	}
	if !close(m.GuessingEntropyPosterior, 2.5, tol) {
		t.Errorf("posterior GE = %v, want 2.5", m.GuessingEntropyPosterior)
	}
	if !close(m.MinEntropyLeakageBits, 0, tol) {
		t.Errorf("min-entropy leakage = %v, want 0", m.MinEntropyLeakageBits)
	}
	if !close(m.CapacityBits, 0, 1e-6) {
		t.Errorf("capacity = %v, want 0", m.CapacityBits)
	}
}

// A deterministic injective channel (every secret its own observation)
// leaks everything: one observation pins the secret.
func TestPointMassChannelLeaksEverything(t *testing.T) {
	const S = 8
	j := NewJoint(S)
	syms := []string{"a", "b", "c", "d", "e", "f", "g", "h"}
	for s := 0; s < S; s++ {
		for i := 0; i < 5; i++ {
			j.Observe(s, syms[s])
		}
	}
	m := j.Metrics()
	if !close(m.GuessingEntropyPrior, 4.5, tol) {
		t.Errorf("prior GE = %v, want 4.5", m.GuessingEntropyPrior)
	}
	if !close(m.GuessingEntropyPosterior, 1, tol) {
		t.Errorf("posterior GE = %v, want 1", m.GuessingEntropyPosterior)
	}
	if !close(m.MinEntropyLeakageBits, 3, tol) {
		t.Errorf("min-entropy leakage = %v, want 3", m.MinEntropyLeakageBits)
	}
	if !close(m.CapacityBits, 3, 1e-6) {
		t.Errorf("capacity = %v, want 3", m.CapacityBits)
	}
}

// The two-secret biased (Z-)channel has closed forms: secret 0 always
// produces "0"; secret 1 produces "0" or "1" with probability 1/2 each.
//
//   - min-entropy leakage = log2( max("0") + max("1") ) = log2(1 + 1/2)
//   - posterior GE: P("1") = 1/4 pins secret 1 (GE 1); P("0") = 3/4 gives
//     posteriors (2/3, 1/3), GE = 1*2/3 + 2*1/3 = 4/3. Total = 1/4 + 3/4*4/3 = 5/4.
//   - capacity of the Z-channel with crossover 1/2: log2(1 + (1-p)*p^(p/(1-p)))
//     = log2(1 + 0.5*0.5) = log2(1.25).
func TestTwoSecretBiasedChannel(t *testing.T) {
	j := NewJoint(2)
	for i := 0; i < 100; i++ {
		j.Observe(0, "0")
	}
	for i := 0; i < 50; i++ {
		j.Observe(1, "0")
		j.Observe(1, "1")
	}
	m := j.Metrics()
	if want := math.Log2(1.5); !close(m.MinEntropyLeakageBits, want, tol) {
		t.Errorf("min-entropy leakage = %v, want %v", m.MinEntropyLeakageBits, want)
	}
	if !close(m.GuessingEntropyPosterior, 1.25, tol) {
		t.Errorf("posterior GE = %v, want 1.25", m.GuessingEntropyPosterior)
	}
	if want := math.Log2(1.25); !close(m.CapacityBits, want, 1e-6) {
		t.Errorf("capacity = %v, want %v (Z-channel closed form)", m.CapacityBits, want)
	}
}

// Metrics must be deterministic: identical observation streams recorded in
// different orders produce bit-identical metrics (the content-addressed
// store depends on this).
func TestMetricsDeterministic(t *testing.T) {
	build := func(reverse bool) Metrics {
		j := NewJoint(3)
		type obs struct {
			s   int
			sym string
		}
		seq := []obs{{0, "x"}, {0, "y"}, {1, "y"}, {1, "z"}, {2, "z"}, {2, "x"}, {0, "x"}, {1, "y"}}
		if reverse {
			for i := len(seq) - 1; i >= 0; i-- {
				j.Observe(seq[i].s, seq[i].sym)
			}
		} else {
			for _, o := range seq {
				j.Observe(o.s, o.sym)
			}
		}
		return j.Metrics()
	}
	a, b := build(false), build(true)
	if a != b {
		t.Errorf("metrics depend on observation order: %+v vs %+v", a, b)
	}
}

// An empty joint distribution is vacuously leak-free rather than NaN.
func TestEmptyJoint(t *testing.T) {
	m := NewJoint(5).Metrics()
	if m.GuessingEntropyPosterior != 3 || m.MinEntropyLeakageBits != 0 || m.CapacityBits != 0 {
		t.Errorf("empty joint: %+v", m)
	}
}

func TestClassString(t *testing.T) {
	if ClassFastHit.String() != "hit" || ClassSlowHit.String() != "slow-hit" || ClassMiss.String() != "miss" {
		t.Errorf("class strings: %s %s %s", ClassFastHit, ClassSlowHit, ClassMiss)
	}
}
