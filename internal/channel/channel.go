// Package channel quantifies the timing side channel an adversary observes
// against a leakage-controlled cache. The attack harness (package attack)
// classifies each probe latency into a small alphabet — fast hit, slow
// drowsy hit, miss (induced misses and true misses are latency-identical by
// construction, which is precisely the gated-Vss masking effect) — and
// canonicalizes one trial's probe vector into an observation symbol. This
// package accumulates the empirical joint distribution of (secret,
// observation) pairs and computes the standard information-flow metrics
// over it:
//
//   - guessing entropy (Massey): the expected number of sequential guesses
//     an optimal adversary needs, before and after observing the channel;
//   - min-entropy leakage (Smith): log2 of the factor by which the
//     one-guess success probability improves, for a uniform secret prior;
//   - an empirical channel-capacity estimate via the Blahut-Arimoto
//     iteration over the observed conditional matrix.
//
// All computations are deterministic: observation symbols are processed in
// sorted order and the capacity iteration runs a fixed number of rounds, so
// a result computed on any host is bit-identical to one computed on any
// other (the store's content addressing relies on this).
package channel

import (
	"math"
	"sort"
)

// Class is one probe's latency classification.
type Class uint8

// Probe latency classes. Induced misses and true misses share ClassMiss:
// the attacker observes latency, and the two are indistinguishable by
// latency — collapsing them in the observation alphabet is the security
// semantics, not a modelling shortcut.
const (
	ClassFastHit Class = iota // active line, hit latency
	ClassSlowHit              // state-preserving standby hit: hit + wake latency
	ClassMiss                 // next-level fetch (true or induced)
	numClasses
)

// String implements fmt.Stringer.
func (c Class) String() string {
	switch c {
	case ClassFastHit:
		return "hit"
	case ClassSlowHit:
		return "slow-hit"
	case ClassMiss:
		return "miss"
	}
	return "class?"
}

// Joint accumulates the empirical joint distribution of (secret,
// observation) pairs for a fixed finite secret space. Observations are
// opaque canonical strings (the attack harness encodes one trial's probe
// classes per target set).
type Joint struct {
	secrets int
	counts  []map[string]uint64 // per secret: observation -> count
	totals  []uint64
}

// NewJoint returns an empty joint distribution over secrets {0..n-1}.
// It panics on a non-positive secret-space size.
func NewJoint(n int) *Joint {
	if n <= 0 {
		panic("channel: NewJoint with non-positive secret count")
	}
	counts := make([]map[string]uint64, n)
	for i := range counts {
		counts[i] = make(map[string]uint64)
	}
	return &Joint{secrets: n, counts: counts, totals: make([]uint64, n)}
}

// Observe records one trial: the victim held secret s and the adversary
// observed symbol obs.
func (j *Joint) Observe(s int, obs string) {
	j.counts[s][obs]++
	j.totals[s]++
}

// Secrets returns the size of the secret space.
func (j *Joint) Secrets() int { return j.secrets }

// Trials returns the total number of recorded observations.
func (j *Joint) Trials() uint64 {
	var n uint64
	for _, t := range j.totals {
		n += t
	}
	return n
}

// Observations returns the number of distinct observation symbols seen.
func (j *Joint) Observations() int {
	return len(j.symbols())
}

// symbols returns every observed symbol in sorted (deterministic) order.
func (j *Joint) symbols() []string {
	seen := make(map[string]bool)
	for _, m := range j.counts {
		for o := range m {
			seen[o] = true
		}
	}
	out := make([]string, 0, len(seen))
	for o := range seen {
		out = append(out, o)
	}
	sort.Strings(out)
	return out
}

// matrix returns the empirical conditional matrix W[s][o] = P(obs o |
// secret s), with rows for unsampled secrets left uniform (they contribute
// nothing distinguishable). Columns follow symbols() order.
func (j *Joint) matrix() ([][]float64, []string) {
	syms := j.symbols()
	w := make([][]float64, j.secrets)
	for s := range w {
		w[s] = make([]float64, len(syms))
		if j.totals[s] == 0 {
			for o := range syms {
				w[s][o] = 1 / float64(len(syms))
			}
			continue
		}
		for o, sym := range syms {
			w[s][o] = float64(j.counts[s][sym]) / float64(j.totals[s])
		}
	}
	return w, syms
}

// Metrics is the full set of channel metrics over the recorded trials.
type Metrics struct {
	// GuessingEntropyPrior is the expected number of guesses with no
	// observation: (S+1)/2 for a uniform prior over S secrets.
	GuessingEntropyPrior float64 `json:"guess_prior"`
	// GuessingEntropyPosterior is the expected number of guesses after one
	// observation, E_o[ sum_i i * p_(i)(o) ] with posteriors sorted
	// descending. Equal to the prior for a leak-free channel; 1.0 for a
	// fully leaking one.
	GuessingEntropyPosterior float64 `json:"guess_posterior"`
	// MinEntropyLeakageBits is Smith's min-entropy leakage for the uniform
	// prior: log2( sum_o max_s P(o|s) ). Zero bits means observations never
	// change the adversary's best single guess; log2(S) means one
	// observation pins the secret.
	MinEntropyLeakageBits float64 `json:"min_entropy_leak_bits"`
	// CapacityBits is the Blahut-Arimoto estimate of the channel capacity
	// of the empirical conditional matrix, in bits per observation. An
	// upper bound over priors on the Shannon leakage.
	CapacityBits float64 `json:"capacity_bits"`
}

// baIterations fixes the Blahut-Arimoto round count so the capacity
// estimate is bit-deterministic across hosts. 200 rounds converges far
// below the metric's statistical noise floor for the alphabet sizes the
// attack scenarios produce.
const baIterations = 200

// Metrics computes every channel metric over the recorded trials. With no
// trials recorded the channel is vacuously leak-free.
func (j *Joint) Metrics() Metrics {
	m := Metrics{GuessingEntropyPrior: float64(j.secrets+1) / 2}
	if j.Trials() == 0 {
		m.GuessingEntropyPosterior = m.GuessingEntropyPrior
		return m
	}
	w, syms := j.matrix()
	pi := 1 / float64(j.secrets)

	// Guessing entropy posterior and min-entropy leakage share the
	// per-observation posterior pass.
	var gPost, vPost float64
	post := make([]float64, j.secrets)
	for o := range syms {
		po := 0.0 // P(o) under the uniform prior
		for s := 0; s < j.secrets; s++ {
			po += pi * w[s][o]
		}
		if po == 0 {
			continue
		}
		maxW := 0.0
		for s := 0; s < j.secrets; s++ {
			post[s] = pi * w[s][o] / po
			if w[s][o] > maxW {
				maxW = w[s][o]
			}
		}
		vPost += maxW
		sort.Sort(sort.Reverse(sort.Float64Slice(post)))
		for i, p := range post {
			gPost += po * float64(i+1) * p
		}
	}
	m.GuessingEntropyPosterior = gPost
	// vPost currently holds sum_o max_s P(o|s); the posterior one-guess
	// vulnerability is vPost/S against a prior vulnerability of 1/S.
	m.MinEntropyLeakageBits = math.Log2(vPost)
	if m.MinEntropyLeakageBits < 0 {
		// Strictly non-negative in exact arithmetic; clamp float dust.
		m.MinEntropyLeakageBits = 0
	}
	m.CapacityBits = capacity(w)
	return m
}

// capacity runs the Blahut-Arimoto iteration on conditional matrix w and
// returns the mutual information of the final input distribution, in bits.
func capacity(w [][]float64) float64 {
	ns := len(w)
	if ns == 0 {
		return 0
	}
	no := len(w[0])
	p := make([]float64, ns)
	for s := range p {
		p[s] = 1 / float64(ns)
	}
	q := make([]float64, no)
	d := make([]float64, ns)
	for it := 0; it < baIterations; it++ {
		for o := range q {
			q[o] = 0
			for s := 0; s < ns; s++ {
				q[o] += p[s] * w[s][o]
			}
		}
		// d[s] = exp( sum_o W[s][o] ln(W[s][o]/q[o]) ), the support of the
		// next input distribution.
		for s := 0; s < ns; s++ {
			sum := 0.0
			for o := 0; o < no; o++ {
				if w[s][o] > 0 && q[o] > 0 {
					sum += w[s][o] * math.Log(w[s][o]/q[o])
				}
			}
			d[s] = math.Exp(sum)
		}
		z := 0.0
		for s := 0; s < ns; s++ {
			p[s] *= d[s]
			z += p[s]
		}
		if z == 0 {
			return 0
		}
		for s := 0; s < ns; s++ {
			p[s] /= z
		}
	}
	// Mutual information of the final distribution.
	for o := range q {
		q[o] = 0
		for s := 0; s < ns; s++ {
			q[o] += p[s] * w[s][o]
		}
	}
	mi := 0.0
	for s := 0; s < ns; s++ {
		for o := 0; o < no; o++ {
			if p[s] > 0 && w[s][o] > 0 && q[o] > 0 {
				mi += p[s] * w[s][o] * math.Log2(w[s][o]/q[o])
			}
		}
	}
	if mi < 0 {
		mi = 0
	}
	return mi
}
