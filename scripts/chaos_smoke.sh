#!/usr/bin/env bash
# Chaos smoke test for leakd, used by CI's chaos-smoke job and `make chaos`:
#
#   1. fault-free reference run: record the sweep's cell results;
#   2. chaos run on a fresh store with the fault plane armed (store syncs
#      failing, handler 5xx) — the sweep must still complete, and every
#      result the daemon acknowledged durably (fetchable by content
#      address) is captured;
#   3. kill -9 mid-sweep, restart on the same store — the daemon must come
#      back healthy, no acknowledged result may be lost or corrupted
#      (bit-identical to the fault-free reference), and the interrupted
#      sweep must complete on resubmit;
#   4. GC run with a halved byte budget — the store must shrink.
#
# Needs curl and jq. Override the port with LEAKD_PORT.
set -euo pipefail
cd "$(dirname "$0")/.."

PORT="${LEAKD_PORT:-8093}"
BASE="http://127.0.0.1:${PORT}"
TMP="$(mktemp -d)"
LEAKD_PID=""
cleanup() {
    [ -n "$LEAKD_PID" ] && kill -9 "$LEAKD_PID" 2>/dev/null || true
    rm -rf "$TMP"
}
trap cleanup EXIT

go build -o "$TMP/leakd" ./cmd/leakd

# req METHOD PATH [DATA]: curl with retries, riding out injected 5xx.
req() {
    local method=$1 path=$2 data=${3:-}
    local i out
    for i in $(seq 1 50); do
        if [ -n "$data" ]; then
            out=$(curl -fsS -X "$method" "$BASE$path" -H 'Content-Type: application/json' -d "$data" 2>/dev/null) && { echo "$out"; return 0; }
        else
            out=$(curl -fsS -X "$method" "$BASE$path" 2>/dev/null) && { echo "$out"; return 0; }
        fi
        sleep 0.1
    done
    echo "request $method $path never succeeded" >&2
    return 1
}

start_leakd() { # start_leakd STORE_DIR LOG_FILE [extra flags...]
    local dir=$1 logf=$2
    shift 2
    "$TMP/leakd" -addr "127.0.0.1:${PORT}" -store "$dir" \
        -n 60000 -warmup 20000 "$@" >"$logf" 2>&1 &
    LEAKD_PID=$!
    local i
    for i in $(seq 1 100); do
        curl -fsS "$BASE/healthz" >/dev/null 2>&1 && return 0
        # Under an armed fault plane healthz itself can 5xx; a live process
        # that answers anything is enough to proceed.
        curl -s -o /dev/null "$BASE/healthz" 2>/dev/null && return 0
        kill -0 "$LEAKD_PID" 2>/dev/null || { echo "leakd died on startup"; cat "$logf"; exit 1; }
        sleep 0.1
    done
    echo "leakd never answered"; cat "$logf"; exit 1
}

stop_leakd() { # graceful
    kill -TERM "$LEAKD_PID" 2>/dev/null || true
    local i
    for i in $(seq 1 150); do
        kill -0 "$LEAKD_PID" 2>/dev/null || break
        sleep 0.1
    done
    LEAKD_PID=""
}

REQ='{"cells":[
  {"bench":"gzip","l2_latency":11,"technique":"drowsy","interval":4096},
  {"bench":"gzip","l2_latency":11,"technique":"gated-vss","interval":4096}]}'
BIGREQ='{"benchmarks":["gzip"],"techniques":["drowsy"],"include_baselines":true,
  "intervals":[1024,2048,4096,8192,16384,32768]}'

submit_and_wait() { # submit_and_wait REQUEST -> final sweep JSON
    local body=$1 id state st
    id=$(req POST /v1/sweeps "$body" | jq -r .id)
    state=queued
    for _ in $(seq 1 600); do
        st=$(req GET "/v1/sweeps/$id")
        state=$(echo "$st" | jq -r .state)
        case "$state" in completed|failed|canceled) break ;; esac
        sleep 0.1
    done
    if [ "$state" != completed ]; then
        echo "sweep $id ended in state $state" >&2
        return 1
    fi
    echo "$st"
}

echo "== phase 1: fault-free reference run =="
start_leakd "$TMP/ref-store" "$TMP/ref.log"
REF=$(submit_and_wait "$REQ") || { cat "$TMP/ref.log"; exit 1; }
echo "$REF" | jq -S '[.cells[] | {cell, hash}]' >"$TMP/ref-cells.json"
# Reference values, keyed by content hash.
for h in $(echo "$REF" | jq -r '.cells[].hash'); do
    req GET "/v1/cells/$h" | jq -S .value >"$TMP/ref-$h.json"
done
stop_leakd

echo "== phase 2: chaos run (store sync faults + handler 5xx) =="
start_leakd "$TMP/chaos-store" "$TMP/chaos.log" \
    -faultplane 'store.sync:err:1/10:seed=7,server.handler:5xx:1/8:seed=3' \
    -sweep-timeout 120s
CHAOS=$(submit_and_wait "$REQ") || { cat "$TMP/chaos.log"; exit 1; }
echo "$CHAOS" | jq '{id, state, executed, degraded}'
[ "$(echo "$CHAOS" | jq .failed)" != 0 ] && [ "$(echo "$CHAOS" | jq .failed)" != null ] \
    && { echo "cells failed under chaos (must degrade, not fail)"; exit 1; }

# Acknowledged-durable set: cells fetchable by content address right now.
# (A degraded sweep may legitimately have failed to persist some.)
: >"$TMP/acked.txt"
for h in $(echo "$CHAOS" | jq -r '.cells[].hash'); do
    if v=$(req GET "/v1/cells/$h" 2>/dev/null | jq -S .value); then
        echo "$h" >>"$TMP/acked.txt"
        echo "$v" >"$TMP/acked-$h.json"
    fi
done
ACKED=$(wc -l <"$TMP/acked.txt")
echo "durably acknowledged cells: $ACKED"

echo "== phase 3: kill -9 mid-sweep, restart, recover =="
BIGID=$(req POST /v1/sweeps "$BIGREQ" | jq -r .id)
sleep 0.4   # let some cells land, then die mid-write
kill -9 "$LEAKD_PID"
wait "$LEAKD_PID" 2>/dev/null || true
LEAKD_PID=""

start_leakd "$TMP/chaos-store" "$TMP/recover.log"   # clean restart, no faults
HEALTH=$(req GET /healthz)
STATUS=$(echo "$HEALTH" | jq -r .status)
[ "$STATUS" = ok ] || { echo "restarted daemon unhealthy: $HEALTH"; cat "$TMP/recover.log"; exit 1; }
QUAR=$(echo "$HEALTH" | jq -r '.store_quarantined // 0')
[ "$QUAR" = 0 ] || { echo "kill -9 corrupted $QUAR acknowledged record(s)"; exit 1; }

# Zero loss: every durably acknowledged result survived, bit-identical to
# the fault-free reference.
while read -r h; do
    v=$(req GET "/v1/cells/$h" | jq -S .value) \
        || { echo "acknowledged cell $h lost across kill -9"; exit 1; }
    echo "$v" | diff -q - "$TMP/acked-$h.json" >/dev/null \
        || { echo "acknowledged cell $h changed across kill -9"; exit 1; }
    [ -f "$TMP/ref-$h.json" ] && {
        echo "$v" | diff - "$TMP/ref-$h.json" >/dev/null \
            || { echo "cell $h differs from fault-free reference"; exit 1; }
    }
done <"$TMP/acked.txt"
echo "all $ACKED acknowledged cells intact and bit-identical"

# The interrupted sweep completes on resubmit (checkpoint + store resume).
BIG=$(submit_and_wait "$BIGREQ") || { cat "$TMP/recover.log"; exit 1; }
echo "$BIG" | jq '{id, state, executed, store_hits, resumed}'
[ "$(echo "$BIG" | jq -r .state)" = completed ] || { echo "interrupted sweep did not recover"; exit 1; }
stop_leakd

echo "== phase 4: GC reclaims space =="
BYTES=$(cat "$TMP/chaos-store"/seg-*.jsonl | wc -c)
start_leakd "$TMP/chaos-store" "$TMP/gc.log" \
    -store-max-bytes $((BYTES / 2)) -gc-interval 1s
for _ in $(seq 1 30); do
    grep -q "store GC dropped" "$TMP/gc.log" && break
    sleep 0.5
done
grep -q "store GC dropped" "$TMP/gc.log" || { echo "GC never ran"; cat "$TMP/gc.log"; exit 1; }
AFTER=$(cat "$TMP/chaos-store"/seg-*.jsonl | wc -c)
[ "$AFTER" -lt "$BYTES" ] || { echo "GC reclaimed nothing ($BYTES -> $AFTER bytes)"; exit 1; }
echo "GC: $BYTES -> $AFTER bytes"
stop_leakd

echo "chaos smoke OK"
