#!/usr/bin/env bash
# Cluster smoke test, used by CI and `make smoke-cluster`:
#
#   1. build leakd, start three workers and one coordinator
#      (consistent-hash sharding over the workers, federated store);
#   2. submit a multi-group sweep to the coordinator and, while it is
#      running, kill -9 one worker — the coordinator must re-shard the
#      dead worker's cells onto the survivors and finish the sweep with
#      zero failed cells (no acknowledged cell is ever lost);
#   3. verify every cell is durable in the coordinator's own store by
#      content address;
#   4. restart the killed worker against an EMPTY store with -peer
#      pointing at the coordinator, submit a cell that was computed
#      elsewhere in the cluster directly to that worker, and require a
#      federated store hit (zero simulation);
#   5. SIGTERM everything and require clean drains.
#
# Needs curl and jq. Override the port base with LEAKD_PORT (takes
# PORT..PORT+3).
set -euo pipefail
cd "$(dirname "$0")/.."

PORT="${LEAKD_PORT:-8100}"
W1=$((PORT)) W2=$((PORT + 1)) W3=$((PORT + 2)) CP=$((PORT + 3))
COORD="http://127.0.0.1:${CP}"
TMP="$(mktemp -d)"
PIDS=()
cleanup() {
    for p in "${PIDS[@]}"; do kill "$p" 2>/dev/null || true; done
    rm -rf "$TMP"
}
trap cleanup EXIT

go build -o "$TMP/leakd" ./cmd/leakd

# start_worker leaves the new pid in LAST_PID (no command substitution:
# the PIDS bookkeeping must run in this shell for the cleanup trap).
start_worker() { # port store logfile [extra flags...]
    local port=$1 store=$2 log=$3
    shift 3
    "$TMP/leakd" -addr "127.0.0.1:${port}" -store "$store" \
        -n 60000 -warmup 20000 "$@" >"$log" 2>&1 &
    LAST_PID=$!
    PIDS+=("$LAST_PID")
}

wait_healthy() { # url log
    local url=$1 log=$2
    for _ in $(seq 1 100); do
        curl -fsS "$url/healthz" >/dev/null 2>&1 && return 0
        sleep 0.1
    done
    echo "daemon at $url never became healthy" >&2
    cat "$log" >&2
    return 1
}

start_worker "$W1" "$TMP/store-w1" "$TMP/w1.log"; W1_PID=$LAST_PID
start_worker "$W2" "$TMP/store-w2" "$TMP/w2.log"; W2_PID=$LAST_PID
start_worker "$W3" "$TMP/store-w3" "$TMP/w3.log"; W3_PID=$LAST_PID

"$TMP/leakd" -coordinator \
    -cluster "http://127.0.0.1:${W1},http://127.0.0.1:${W2},http://127.0.0.1:${W3}" \
    -addr "127.0.0.1:${CP}" -store "$TMP/store-coord" \
    -n 60000 -warmup 20000 >"$TMP/coord.log" 2>&1 &
COORD_PID=$!
PIDS+=("$COORD_PID")

wait_healthy "http://127.0.0.1:${W1}" "$TMP/w1.log"
wait_healthy "http://127.0.0.1:${W2}" "$TMP/w2.log"
wait_healthy "http://127.0.0.1:${W3}" "$TMP/w3.log"
wait_healthy "$COORD" "$TMP/coord.log"

# Six (bench, L2) shard groups so every worker gets work, with enough
# instructions per cell that the sweep is still running when we kill a
# worker.
REQ='{"instructions":400000,"warmup":50000,
  "benchmarks":["gzip","gcc","mcf","vpr","parser","twolf"],
  "techniques":["drowsy","gated-vss"],
  "intervals":[2048,8192],
  "l2_latencies":[11]}'

echo "== sharded sweep with a worker killed mid-flight =="
ID=$(curl -fsS -X POST "$COORD/v1/sweeps" \
    -H 'Content-Type: application/json' -d "$REQ" | jq -r .id)

# Wait for the sweep to leave the queue, then murder worker 2.
for _ in $(seq 1 100); do
    STATE=$(curl -fsS "$COORD/v1/sweeps/$ID" | jq -r .state)
    [ "$STATE" != queued ] && break
    sleep 0.05
done
sleep 0.2
kill -9 "$W2_PID"
echo "killed worker 2 (pid $W2_PID) while sweep $ID was $STATE"

for _ in $(seq 1 600); do
    STATE=$(curl -fsS "$COORD/v1/sweeps/$ID" | jq -r .state)
    case "$STATE" in completed|failed|canceled) break ;; esac
    sleep 0.1
done
FINAL=$(curl -fsS "$COORD/v1/sweeps/$ID")
echo "$FINAL" | jq '{id, state, total, completed, executed, store_hits, failed, degraded}'
[ "$(echo "$FINAL" | jq -r .state)" = completed ] || {
    echo "sweep ended in state $(echo "$FINAL" | jq -r .state), not completed" >&2
    cat "$TMP/coord.log" >&2
    exit 1
}
[ "$(echo "$FINAL" | jq .failed)" = 0 ] || { echo "cells were lost to the worker death"; exit 1; }
[ "$(echo "$FINAL" | jq .total)" = 24 ] || { echo "expected 24 cells"; exit 1; }
[ "$(echo "$FINAL" | jq .completed)" = 24 ] || { echo "not every cell completed"; exit 1; }

echo "== every cell durable in the coordinator store by content address =="
for HASH in $(echo "$FINAL" | jq -r '.cells[].hash'); do
    curl -fsS "$COORD/v1/cells/$HASH" | jq -e '.value' >/dev/null \
        || { echo "cell $HASH not fetchable from the coordinator store"; exit 1; }
done

echo "== restarted worker serves cluster-computed cells via federation =="
# Fresh, empty store: any hit must come through -peer.
start_worker "$W2" "$TMP/store-w2-reborn" "$TMP/w2-reborn.log" -peer "$COORD"; W2_PID=$LAST_PID
wait_healthy "http://127.0.0.1:${W2}" "$TMP/w2-reborn.log"

FED_REQ='{"instructions":400000,"warmup":50000,"cells":[
  {"bench":"gzip","l2_latency":11,"technique":"drowsy","interval":2048}]}'
FID=$(curl -fsS -X POST "http://127.0.0.1:${W2}/v1/sweeps" \
    -H 'Content-Type: application/json' -d "$FED_REQ" | jq -r .id)
for _ in $(seq 1 300); do
    FSTATE=$(curl -fsS "http://127.0.0.1:${W2}/v1/sweeps/$FID" | jq -r .state)
    case "$FSTATE" in completed|failed|canceled) break ;; esac
    sleep 0.1
done
FED=$(curl -fsS "http://127.0.0.1:${W2}/v1/sweeps/$FID")
echo "$FED" | jq '{id, state, executed, store_hits}'
[ "$(echo "$FED" | jq -r .state)" = completed ] || { echo "federated sweep did not complete"; cat "$TMP/w2-reborn.log"; exit 1; }
[ "$(echo "$FED" | jq .store_hits)" = 1 ] || { echo "restarted worker missed the federated store"; exit 1; }
[ "$(echo "$FED" | jq .executed)" = 0 ] || { echo "restarted worker re-simulated a cluster-computed cell"; exit 1; }

echo "== SIGTERM drains cleanly =="
kill -TERM "$COORD_PID" "$W1_PID" "$W2_PID" "$W3_PID" 2>/dev/null || true
for p in "$COORD_PID" "$W1_PID" "$W2_PID" "$W3_PID"; do
    for _ in $(seq 1 150); do
        kill -0 "$p" 2>/dev/null || break
        sleep 0.1
    done
    kill -0 "$p" 2>/dev/null && { echo "pid $p still running after SIGTERM"; exit 1; }
done
grep -q "drained" "$TMP/coord.log" || { echo "no drain line in coordinator log"; cat "$TMP/coord.log"; exit 1; }

echo "cluster smoke OK"
