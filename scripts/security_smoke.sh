#!/usr/bin/env bash
# Security-suite smoke test, used by CI and `make smoke-security`:
#
#   1. build leakd and start it against a temp store;
#   2. submit a tiny attack sweep (kind:"attack" cells — prime+probe
#      scenario under drowsy and gated-Vss) over HTTP and wait for it;
#   3. assert the channel metrics separate the techniques: drowsy must
#      leak strictly more than gated-Vss on the smoke scenario (the
#      paper's state-preserving distinction, measured as information);
#   4. resubmit the identical sweep and require 100% store hits
#      (zero re-execution) with bit-identical stored cells;
#   5. run `leakbench -attack -remote` against the daemon and require
#      the same metric values the local store carries;
#   6. SIGTERM the daemon and require a clean graceful drain.
#
# Needs curl and jq. Override the port with LEAKD_PORT.
set -euo pipefail
cd "$(dirname "$0")/.."

PORT="${LEAKD_PORT:-8093}"
BASE="http://127.0.0.1:${PORT}"
TMP="$(mktemp -d)"
LEAKD_PID=""
cleanup() {
    [ -n "$LEAKD_PID" ] && kill "$LEAKD_PID" 2>/dev/null || true
    rm -rf "$TMP"
}
trap cleanup EXIT

go build -o "$TMP/leakd" ./cmd/leakd
go build -o "$TMP/leakbench" ./cmd/leakbench
"$TMP/leakd" -addr "127.0.0.1:${PORT}" -store "$TMP/store" \
    -n 60000 -warmup 20000 >"$TMP/leakd.log" 2>&1 &
LEAKD_PID=$!

for _ in $(seq 1 100); do
    curl -fsS "$BASE/healthz" >/dev/null 2>&1 && break
    kill -0 "$LEAKD_PID" 2>/dev/null || { echo "leakd died on startup"; cat "$TMP/leakd.log"; exit 1; }
    sleep 0.1
done
curl -fsS "$BASE/healthz" >/dev/null || { echo "leakd never became healthy"; cat "$TMP/leakd.log"; exit 1; }

REQ='{"cells":[
  {"kind":"attack","scenario":"smoke","l2_latency":11,"technique":"none","interval":0},
  {"kind":"attack","scenario":"smoke","l2_latency":11,"technique":"drowsy","interval":2048},
  {"kind":"attack","scenario":"smoke","l2_latency":11,"technique":"gated-vss","interval":2048}]}'

submit_and_wait() {
    local id state
    id=$(curl -fsS -X POST "$BASE/v1/sweeps" \
        -H 'Content-Type: application/json' -d "$REQ" | jq -r .id)
    state=queued
    for _ in $(seq 1 300); do
        state=$(curl -fsS "$BASE/v1/sweeps/$id" | jq -r .state)
        case "$state" in completed|failed|canceled) break ;; esac
        sleep 0.1
    done
    if [ "$state" != completed ]; then
        echo "sweep $id ended in state $state" >&2
        cat "$TMP/leakd.log" >&2
        exit 1
    fi
    curl -fsS "$BASE/v1/sweeps/$id"
}

cell_leak() { # $1 = sweep status JSON, $2 = technique
    local hash
    hash=$(echo "$1" | jq -r --arg t "$2" '.cells[] | select(.technique == $t) | .hash')
    curl -fsS "$BASE/v1/cells/$hash" | jq '.value.min_entropy_leak_bits'
}

echo "== cold attack sweep (must execute all three cells) =="
COLD=$(submit_and_wait)
echo "$COLD" | jq '{id, state, executed, store_hits, failed}'
[ "$(echo "$COLD" | jq .total)" = 3 ] || { echo "expected 3 cells"; exit 1; }
[ "$(echo "$COLD" | jq .failed)" = 0 ] || { echo "attack cells failed"; exit 1; }
[ "$(echo "$COLD" | jq '.executed + .resumed')" = 3 ] || { echo "cold sweep did not execute its cells"; exit 1; }

echo "== channel metrics separate the techniques =="
DROWSY_LEAK=$(cell_leak "$COLD" drowsy)
GATED_LEAK=$(cell_leak "$COLD" gated-vss)
echo "drowsy leak: ${DROWSY_LEAK} bits, gated-vss leak: ${GATED_LEAK} bits"
jq -n --argjson d "$DROWSY_LEAK" --argjson g "$GATED_LEAK" 'if $d > $g then empty else error("drowsy does not leak more than gated") end' \
    || { echo "state-preserving distinction lost: drowsy=${DROWSY_LEAK} gated=${GATED_LEAK}"; exit 1; }

echo "== warm resubmit (must be 100% store hits, zero execution) =="
WARM=$(submit_and_wait)
echo "$WARM" | jq '{id, state, executed, store_hits}'
[ "$(echo "$WARM" | jq .store_hits)" = 3 ] || { echo "warm resubmit missed the store"; exit 1; }
[ "$(echo "$WARM" | jq .executed)" = 0 ] || { echo "warm resubmit re-executed"; exit 1; }

echo "== attack counters are on /metrics =="
METRICS=$(curl -fsS "$BASE/metrics")
for m in attack_runs_total attack_trials_total channel_estimates_total; do
    echo "$METRICS" | grep -q "^$m " || { echo "/metrics missing $m"; exit 1; }
done
[ "$(echo "$METRICS" | awk '$1 == "attack_runs_total" {print $2}')" -ge 3 ] \
    || { echo "attack_runs_total did not count the sweep"; exit 1; }

echo "== leakbench -attack -remote matches the stored cells =="
"$TMP/leakbench" -attack -scenario smoke -attack-intervals 2048 \
    -remote "$BASE" -csv >"$TMP/frontier.csv" 2>"$TMP/leakbench.log" \
    || { cat "$TMP/leakbench.log"; exit 1; }
cat "$TMP/frontier.csv"
REMOTE_DROWSY=$(awk -F, '$1 == "drowsy" {print $3}' "$TMP/frontier.csv")
jq -n --argjson a "$REMOTE_DROWSY" --argjson b "$DROWSY_LEAK" 'if ($a - $b)*($a - $b) < 1e-18 then empty else error("mismatch") end' \
    || { echo "leakbench -remote leak ${REMOTE_DROWSY} != daemon cell ${DROWSY_LEAK}"; exit 1; }

echo "== SIGTERM drains cleanly =="
kill -TERM "$LEAKD_PID"
for _ in $(seq 1 150); do
    kill -0 "$LEAKD_PID" 2>/dev/null || break
    sleep 0.1
done
if kill -0 "$LEAKD_PID" 2>/dev/null; then
    echo "leakd still running after SIGTERM" >&2
    cat "$TMP/leakd.log" >&2
    exit 1
fi
wait "$LEAKD_PID" || { echo "leakd exited non-zero"; cat "$TMP/leakd.log"; exit 1; }
LEAKD_PID=""

echo "security smoke OK"
