#!/usr/bin/env bash
# Daemon smoke test, used by CI and `make smoke-daemon`:
#
#   1. build leakd and start it against a temp store;
#   2. submit a two-cell sweep over HTTP and wait for completion;
#   3. resubmit the identical sweep and require 100% store hits
#      (zero simulation) with the cells served by content address;
#   4. SIGTERM the daemon and require a clean graceful drain.
#
# Needs curl and jq. Override the port with LEAKD_PORT.
set -euo pipefail
cd "$(dirname "$0")/.."

PORT="${LEAKD_PORT:-8091}"
BASE="http://127.0.0.1:${PORT}"
TMP="$(mktemp -d)"
LEAKD_PID=""
cleanup() {
    [ -n "$LEAKD_PID" ] && kill "$LEAKD_PID" 2>/dev/null || true
    rm -rf "$TMP"
}
trap cleanup EXIT

go build -o "$TMP/leakd" ./cmd/leakd
"$TMP/leakd" -addr "127.0.0.1:${PORT}" -store "$TMP/store" \
    -n 60000 -warmup 20000 >"$TMP/leakd.log" 2>&1 &
LEAKD_PID=$!

for _ in $(seq 1 100); do
    curl -fsS "$BASE/healthz" >/dev/null 2>&1 && break
    kill -0 "$LEAKD_PID" 2>/dev/null || { echo "leakd died on startup"; cat "$TMP/leakd.log"; exit 1; }
    sleep 0.1
done
curl -fsS "$BASE/healthz" >/dev/null || { echo "leakd never became healthy"; cat "$TMP/leakd.log"; exit 1; }

REQ='{"cells":[
  {"bench":"gzip","l2_latency":11,"technique":"drowsy","interval":4096},
  {"bench":"gzip","l2_latency":11,"technique":"gated-vss","interval":4096}]}'

submit_and_wait() {
    local id state
    id=$(curl -fsS -X POST "$BASE/v1/sweeps" \
        -H 'Content-Type: application/json' -d "$REQ" | jq -r .id)
    state=queued
    for _ in $(seq 1 300); do
        state=$(curl -fsS "$BASE/v1/sweeps/$id" | jq -r .state)
        case "$state" in completed|failed|canceled) break ;; esac
        sleep 0.1
    done
    if [ "$state" != completed ]; then
        echo "sweep $id ended in state $state" >&2
        cat "$TMP/leakd.log" >&2
        exit 1
    fi
    curl -fsS "$BASE/v1/sweeps/$id"
}

echo "== cold sweep (must simulate both cells) =="
COLD=$(submit_and_wait)
echo "$COLD" | jq '{id, state, executed, store_hits}'
[ "$(echo "$COLD" | jq .total)" = 2 ] || { echo "expected 2 cells"; exit 1; }
[ "$(echo "$COLD" | jq '.executed + .resumed')" = 2 ] || { echo "cold sweep did not simulate its cells"; exit 1; }

echo "== SSE event stream replays the harness trace =="
curl -fsS --max-time 20 "$BASE/v1/sweeps/$(echo "$COLD" | jq -r .id)/events" \
    | grep -q "event: run_done" || { echo "no run_done in SSE stream"; exit 1; }

echo "== warm resubmit (must be 100% store hits, zero simulation) =="
WARM=$(submit_and_wait)
echo "$WARM" | jq '{id, state, executed, store_hits}'
[ "$(echo "$WARM" | jq .store_hits)" = 2 ] || { echo "warm resubmit missed the store"; exit 1; }
[ "$(echo "$WARM" | jq .executed)" = 0 ] || { echo "warm resubmit re-simulated"; exit 1; }

HASH=$(echo "$WARM" | jq -r '.cells[0].hash')
curl -fsS "$BASE/v1/cells/$HASH" | jq -e '.value' >/dev/null \
    || { echo "cell $HASH not fetchable by content address"; exit 1; }

echo "== SIGTERM drains cleanly =="
kill -TERM "$LEAKD_PID"
for _ in $(seq 1 150); do
    kill -0 "$LEAKD_PID" 2>/dev/null || break
    sleep 0.1
done
if kill -0 "$LEAKD_PID" 2>/dev/null; then
    echo "leakd still running after SIGTERM" >&2
    cat "$TMP/leakd.log" >&2
    exit 1
fi
wait "$LEAKD_PID" || { echo "leakd exited non-zero"; cat "$TMP/leakd.log"; exit 1; }
LEAKD_PID=""
grep -q "drained" "$TMP/leakd.log" || { echo "no drain line in leakd log"; cat "$TMP/leakd.log"; exit 1; }

echo "daemon smoke OK"
