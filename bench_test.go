// Benchmarks that regenerate every table and figure of the paper's
// evaluation, plus ablations for the design choices DESIGN.md calls out.
//
// Each benchmark runs the corresponding experiment at a reduced scale
// (BENCH_INSTR committed instructions per run instead of the paper's 500M)
// and reports the headline numbers as custom metrics, so
//
//	go test -bench=. -benchmem
//
// prints the series the paper's bar charts show. Run with -v (and
// -benchtime=1x) to get the full per-benchmark tables via b.Log. Results
// are cached within a benchmark, so extra b.N iterations are cheap.
package hotleakage_test

import (
	"context"
	"sync"
	"testing"
	"time"

	"hotleakage/internal/adaptive"
	"hotleakage/internal/decay"
	"hotleakage/internal/energy"
	"hotleakage/internal/leakage"
	"hotleakage/internal/leakctl"
	"hotleakage/internal/sim"
	"hotleakage/internal/tech"
	"hotleakage/internal/workload"
)

const (
	benchWarmup = 120_000
	benchInstr  = 300_000
)

// ctx0 is the benchmarks' context; they run uninterrupted.
var ctx0 = context.Background()

// must unwraps a (value, error) pair; benchmark configurations are known
// good, so an error is a bug.
func must[T any](v T, err error) T {
	if err != nil {
		panic(err)
	}
	return v
}

// experiments is shared across benchmarks so the run cache amortizes.
var (
	expOnce sync.Once
	exp     *sim.Experiments
)

func experiments() *sim.Experiments {
	expOnce.Do(func() {
		exp = sim.NewExperiments()
		exp.Warmup = benchWarmup
		exp.Instructions = benchInstr
	})
	return exp
}

// reportPair publishes a savings/perf figure pair as benchmark metrics.
func reportPair(b *testing.B, sav, perf sim.Figure) {
	b.Helper()
	sd, sg := sav.Avg()
	pd, pg := perf.Avg()
	b.ReportMetric(sd, "savings%/drowsy")
	b.ReportMetric(sg, "savings%/gated")
	b.ReportMetric(pd, "perfloss%/drowsy")
	b.ReportMetric(pg, "perfloss%/gated")
	b.Log("\n" + sav.String() + "\n" + perf.String())
}

func BenchmarkFigure1(b *testing.B) {
	p := tech.MustByNode(tech.Node70)
	var curves [4]sim.Curve
	for i := 0; i < b.N; i++ {
		curves = sim.Figure1(p)
	}
	// Headline: the 300K -> 383K leakage growth factor (panel 1c).
	c := curves[2]
	b.ReportMetric(c.Y[len(c.Y)-1]/c.Y[0], "leak-growth-300K-400K")
	for _, cv := range curves {
		b.Log("\n" + cv.String())
	}
}

func BenchmarkTable1(b *testing.B) {
	var out string
	for i := 0; i < b.N; i++ {
		out = sim.Table1()
	}
	b.Log("\n" + out)
}

func BenchmarkTable2(b *testing.B) {
	var out string
	for i := 0; i < b.N; i++ {
		out = sim.Table2(sim.DefaultMachine(11))
	}
	b.Log("\n" + out)
}

func BenchmarkFigure3_4(b *testing.B) {
	e := experiments()
	var sav, perf sim.Figure
	for i := 0; i < b.N; i++ {
		sav, perf = e.Figure3_4()
	}
	reportPair(b, sav, perf)
}

func BenchmarkFigure5_6(b *testing.B) {
	e := experiments()
	var sav, perf sim.Figure
	for i := 0; i < b.N; i++ {
		sav, perf = e.Figure5_6()
	}
	reportPair(b, sav, perf)
}

func BenchmarkFigure7(b *testing.B) {
	e := experiments()
	var sav sim.Figure
	for i := 0; i < b.N; i++ {
		sav = e.Figure7()
	}
	sd, sg := sav.Avg()
	b.ReportMetric(sd, "savings%/drowsy")
	b.ReportMetric(sg, "savings%/gated")
	b.Log("\n" + sav.String())
}

func BenchmarkFigure8_9(b *testing.B) {
	e := experiments()
	var sav, perf sim.Figure
	for i := 0; i < b.N; i++ {
		sav, perf = e.Figure8_9()
	}
	reportPair(b, sav, perf)
}

func BenchmarkFigure10_11(b *testing.B) {
	e := experiments()
	var sav, perf sim.Figure
	for i := 0; i < b.N; i++ {
		sav, perf = e.Figure10_11()
	}
	reportPair(b, sav, perf)
}

func BenchmarkFigure12_13(b *testing.B) {
	e := experiments()
	var sav, perf sim.Figure
	for i := 0; i < b.N; i++ {
		sav, perf = e.Figure12_13()
	}
	reportPair(b, sav, perf)
}

func BenchmarkTable3(b *testing.B) {
	e := experiments()
	var out string
	for i := 0; i < b.N; i++ {
		out = e.Table3()
	}
	b.Log("\n" + out)
}

// --- Ablations -------------------------------------------------------

// benchMachine is the shared ablation machine (11-cycle L2).
func benchMachine() sim.MachineConfig {
	mc := sim.DefaultMachine(11)
	mc.Warmup = benchWarmup
	mc.Instructions = benchInstr
	return mc
}

// ablationBenches is the subset used by the ablation studies.
var ablationBenches = []string{"gcc", "gzip", "twolf", "crafty"}

// runAblation evaluates params over the ablation subset and returns the
// average net savings and perf loss at 110C.
func runAblation(mc sim.MachineConfig, params leakctl.Params, adapter leakctl.Adapter) (sav, perf float64) {
	suite := sim.NewSuite(mc)
	model := leakage.New(mc.Tech)
	for _, name := range ablationBenches {
		prof, _ := workload.ByName(name)
		run := must(sim.RunOne(ctx0, mc, prof, params, adapter))
		p := must(suite.EvaluateRun(ctx0, prof, run, 110, model))
		sav += p.Cmp.NetSavingsPct
		perf += p.Cmp.PerfLossPct
	}
	n := float64(len(ablationBenches))
	return sav / n, perf / n
}

// BenchmarkAblationPolicy compares the drowsy paper's two deactivation
// policies under identical hardware (Section 2.3).
func BenchmarkAblationPolicy(b *testing.B) {
	mc := benchMachine()
	var naS, naP, siS, siP float64
	for i := 0; i < b.N; i++ {
		pNA := leakctl.DefaultParams(leakctl.TechDrowsy, sim.DefaultInterval)
		pNA.Policy = decay.PolicyNoAccess
		naS, naP = runAblation(mc, pNA, nil)
		pSI := leakctl.DefaultParams(leakctl.TechDrowsy, sim.DefaultInterval)
		pSI.Policy = decay.PolicySimple
		siS, siP = runAblation(mc, pSI, nil)
	}
	b.ReportMetric(naS, "savings%/noaccess")
	b.ReportMetric(siS, "savings%/simple")
	b.ReportMetric(naP, "perfloss%/noaccess")
	b.ReportMetric(siP, "perfloss%/simple")
}

// BenchmarkAblationTagDecay reproduces the Section 5.3 discussion: keeping
// drowsy tags awake trims the performance loss but forfeits the tags' 5-10%
// of cache leakage.
func BenchmarkAblationTagDecay(b *testing.B) {
	mc := benchMachine()
	suite := sim.NewSuite(mc)
	model := leakage.New(mc.Tech)
	var onS, onP, offS, offP float64
	for i := 0; i < b.N; i++ {
		onS, onP, offS, offP = 0, 0, 0, 0
		for _, name := range ablationBenches {
			prof, _ := workload.ByName(name)
			pd := leakctl.DefaultParams(leakctl.TechDrowsy, sim.DefaultInterval)
			run := must(sim.RunOne(ctx0, mc, prof, pd, nil))
			base := must(suite.Baseline(ctx0, prof))
			model.SetEnv(leakage.Env{TempK: leakage.CelsiusToKelvin(110), Vdd: mc.Tech.VddNominal})
			on := must(energy.CompareTags(model, mc.L1D, leakage.ModeDrowsy, true,
				base.Measurement, run.Measurement, mc.Tech.ClockHz))
			onS += on.NetSavingsPct
			onP += on.PerfLossPct

			pa := pd
			pa.DecayTags = false
			pa.WakeLatency = 1 // data-only wake: 1-2 cycles per the paper
			runAwake := must(sim.RunOne(ctx0, mc, prof, pa, nil))
			off := must(energy.CompareTags(model, mc.L1D, leakage.ModeDrowsy, false,
				base.Measurement, runAwake.Measurement, mc.Tech.ClockHz))
			offS += off.NetSavingsPct
			offP += off.PerfLossPct
		}
	}
	n := float64(len(ablationBenches))
	b.ReportMetric(onS/n, "savings%/tags-decayed")
	b.ReportMetric(offS/n, "savings%/tags-awake")
	b.ReportMetric(onP/n, "perfloss%/tags-decayed")
	b.ReportMetric(offP/n, "perfloss%/tags-awake")
}

// BenchmarkAblationRBB runs the third technique (state-preserving reverse
// body bias) as the paper's extension study.
func BenchmarkAblationRBB(b *testing.B) {
	mc := benchMachine()
	var s, p float64
	for i := 0; i < b.N; i++ {
		s, p = runAblation(mc, leakctl.DefaultParams(leakctl.TechRBB, sim.DefaultInterval), nil)
	}
	b.ReportMetric(s, "savings%/rbb")
	b.ReportMetric(p, "perfloss%/rbb")
}

// BenchmarkAblationAdaptive compares fixed-interval gated-Vss against the
// Section 5.4 feedback controller.
func BenchmarkAblationAdaptive(b *testing.B) {
	mc := benchMachine()
	var fs, fp, as, ap float64
	for i := 0; i < b.N; i++ {
		fs, fp = runAblation(mc, leakctl.DefaultParams(leakctl.TechGated, sim.DefaultInterval), nil)
		as, ap = 0, 0
		suite := sim.NewSuite(mc)
		model := leakage.New(mc.Tech)
		for _, name := range ablationBenches {
			prof, _ := workload.ByName(name)
			ctl := adaptive.NewFeedback(sim.DefaultInterval, 8)
			run := must(sim.RunOne(ctx0, mc, prof, leakctl.DefaultParams(leakctl.TechGated, sim.DefaultInterval), ctl))
			pt := must(suite.EvaluateRun(ctx0, prof, run, 110, model))
			as += pt.Cmp.NetSavingsPct
			ap += pt.Cmp.PerfLossPct
		}
		as /= float64(len(ablationBenches))
		ap /= float64(len(ablationBenches))
	}
	b.ReportMetric(fs, "savings%/fixed")
	b.ReportMetric(as, "savings%/feedback")
	b.ReportMetric(fp, "perfloss%/fixed")
	b.ReportMetric(ap, "perfloss%/feedback")
}

// BenchmarkAblationPerLineAdaptive compares the three adaptive options the
// paper lists in Section 5.4: fixed interval, the Kaxiras-style per-line
// selectors, and the feedback controller.
func BenchmarkAblationPerLineAdaptive(b *testing.B) {
	mc := benchMachine()
	var fixed, perline float64
	for i := 0; i < b.N; i++ {
		fixed, _ = runAblation(mc, leakctl.DefaultParams(leakctl.TechGated, sim.DefaultInterval), nil)
		pl := leakctl.DefaultParams(leakctl.TechGated, sim.DefaultInterval)
		pl.PerLineAdaptive = true
		perline, _ = runAblation(mc, pl, nil)
	}
	b.ReportMetric(fixed, "savings%/fixed")
	b.ReportMetric(perline, "savings%/per-line")
}

// BenchmarkAblationICache extends leakage control to the L1 instruction
// cache (the paper studies only the D-cache) and reports the I-cache's own
// net savings under both techniques.
func BenchmarkAblationICache(b *testing.B) {
	mc := benchMachine()
	var drowsyS, gatedS float64
	for i := 0; i < b.N; i++ {
		for _, tq := range []leakctl.Technique{leakctl.TechDrowsy, leakctl.TechGated} {
			params := leakctl.DefaultParams(tq, sim.DefaultInterval)
			mcI := mc
			mcI.IL1Control = &params
			suite := sim.NewSuite(mc) // baseline: no control anywhere
			model := leakage.New(mc.Tech)
			sum := 0.0
			for _, name := range ablationBenches {
				prof, _ := workload.ByName(name)
				run := must(sim.RunOne(ctx0, mcI, prof, leakctl.DefaultParams(leakctl.TechNone, 0), nil))
				base := must(suite.Baseline(ctx0, prof))
				model.SetEnv(leakage.Env{TempK: leakage.CelsiusToKelvin(110), Vdd: mc.Tech.VddNominal})
				cmp := must(energy.Compare(model, mc.L1I, tq.Mode(),
					base.Measurement, *run.IL1Meas, mc.Tech.ClockHz))
				sum += cmp.NetSavingsPct
			}
			if tq == leakctl.TechDrowsy {
				drowsyS = sum / float64(len(ablationBenches))
			} else {
				gatedS = sum / float64(len(ablationBenches))
			}
		}
	}
	b.ReportMetric(drowsyS, "il1-savings%/drowsy")
	b.ReportMetric(gatedS, "il1-savings%/gated")
}

// BenchmarkAblationVariation quantifies the inter-die Monte Carlo's effect
// on the leakage magnitudes (Section 3.3).
func BenchmarkAblationVariation(b *testing.B) {
	p := tech.MustByNode(tech.Node70)
	var plain, varied float64
	for i := 0; i < b.N; i++ {
		m0 := leakage.New(p)
		m1 := leakage.New(p, leakage.WithVariation(leakage.DefaultVariation70nm()))
		env := leakage.Env{TempK: leakage.CelsiusToKelvin(110), Vdd: 0.9}
		m0.SetEnv(env)
		m1.SetEnv(env)
		plain = m0.StructurePower(leakage.SRAM6T, 64*1024*8, leakage.ModeActive)
		varied = m1.StructurePower(leakage.SRAM6T, 64*1024*8, leakage.ModeActive)
	}
	b.ReportMetric(1e3*plain, "mW/nominal")
	b.ReportMetric(1e3*varied, "mW/with-variation")
	b.ReportMetric(varied/plain, "variation-multiplier")
}

// BenchmarkAblationBackgroundPower sweeps the one deliberately calibrated
// whole-chip constant (ChipBackgroundW, see EXPERIMENTS.md) to expose how
// the drowsy/gated ranking at L2=11 depends on how much a cycle of extra
// runtime costs.
func BenchmarkAblationBackgroundPower(b *testing.B) {
	var lo, mid, hi float64 // gated-minus-drowsy average savings gap
	for i := 0; i < b.N; i++ {
		for _, w := range []float64{0.3, 1.2, 3.0} {
			mc := benchMachine()
			mc.Tech.ChipBackgroundW = w
			dS, _ := runAblation(mc, leakctl.DefaultParams(leakctl.TechDrowsy, sim.DefaultInterval), nil)
			gS, _ := runAblation(mc, leakctl.DefaultParams(leakctl.TechGated, sim.DefaultInterval), nil)
			switch w {
			case 0.3:
				lo = gS - dS
			case 1.2:
				mid = gS - dS
			default:
				hi = gS - dS
			}
		}
	}
	b.ReportMetric(lo, "gated-minus-drowsy/0.3W")
	b.ReportMetric(mid, "gated-minus-drowsy/1.2W")
	b.ReportMetric(hi, "gated-minus-drowsy/3.0W")
}

// BenchmarkAblationL2Latency sweeps the L2 latency for one benchmark,
// exposing the crossover the whole paper is about.
func BenchmarkAblationL2Latency(b *testing.B) {
	var gcc5, gcc17 float64
	for i := 0; i < b.N; i++ {
		for _, l2 := range []int{5, 17} {
			mc := sim.DefaultMachine(l2)
			mc.Warmup = benchWarmup
			mc.Instructions = benchInstr
			suite := sim.NewSuite(mc)
			model := leakage.New(mc.Tech)
			prof, _ := workload.ByName("gcc")
			run := must(sim.RunOne(ctx0, mc, prof, leakctl.DefaultParams(leakctl.TechGated, sim.DefaultInterval), nil))
			p := must(suite.EvaluateRun(ctx0, prof, run, 110, model))
			if l2 == 5 {
				gcc5 = p.Cmp.NetSavingsPct
			} else {
				gcc17 = p.Cmp.NetSavingsPct
			}
		}
	}
	b.ReportMetric(gcc5, "gated-savings%/L2=5")
	b.ReportMetric(gcc17, "gated-savings%/L2=17")
}

// BenchmarkSimulatorThroughput measures raw simulation speed (committed
// instructions per second), the practical limit on experiment scale.
func BenchmarkSimulatorThroughput(b *testing.B) {
	prof, _ := workload.ByName("gzip")
	mc := sim.DefaultMachine(11)
	mc.Warmup = 0
	mc.Instructions = 100_000
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		must(sim.RunOne(ctx0, mc, prof, leakctl.DefaultParams(leakctl.TechGated, sim.DefaultInterval), nil))
	}
	b.ReportMetric(float64(mc.Instructions)*float64(b.N)/b.Elapsed().Seconds(), "instr/s")
}

// BenchmarkSuiteSweep measures end-to-end sweep throughput through the
// production path — shared trace cache, cost-ordered GOMAXPROCS-sized
// worker pool and per-worker state reuse. Each iteration builds a fresh
// Experiments and regenerates one full figure pair (every benchmark:
// baseline + drowsy + gated), so the numbers include trace recording,
// scheduling, simulation and evaluation. The variants isolate the
// optimizations: "full" is the default path (lockstep batch execution off
// one shared decoded front per benchmark group), "scalar" disables
// batching and runs every cell through the per-cell supervisor path,
// "no-trace-cache" regenerates every instruction stream live, and
// "serial" runs the same sweep on one worker.
//
// Methodology: the variants are NOT separate sub-benchmarks. Sub-benchmarks
// run back to back, each in its own multi-second window, so slow drift in
// host conditions (CPU clocking, co-tenants on a shared VM — easily ±10%
// over minutes on the reference box) lands on whichever variant happens to
// run during the bad minutes and can invert an ordering outright. Instead
// every iteration runs all four variants with per-variant stopwatches, in
// mirrored order (forward then reverse) so first-order drift WITHIN the
// iteration — the host speeding up or slowing down over the ~40 s window —
// cancels out of the totals instead of systematically taxing whichever
// variant runs first. One untimed warmup sweep absorbs process cold-start
// (page cache, allocator growth, CPU clock ramp) before anything is timed.
// Per-variant throughput is reported as "<variant>:instr/s" custom metrics.
func BenchmarkSuiteSweep(b *testing.B) {
	variants := []struct {
		name      string
		configure func(*sim.Experiments)
	}{
		{"full", nil},
		{"scalar", func(e *sim.Experiments) { e.DisableBatch = true }},
		{"no-trace-cache", func(e *sim.Experiments) { e.DisableTraceCache = true }},
		{"serial", func(e *sim.Experiments) { e.Workers = 1 }},
	}
	b.ReportAllocs()
	elapsed := make([]time.Duration, len(variants))
	executed := make([]int, len(variants))
	runSweep := func(vi int, timed bool) {
		e := sim.NewExperiments()
		e.Warmup = benchWarmup
		e.Instructions = benchInstr
		if cfg := variants[vi].configure; cfg != nil {
			cfg(e)
		}
		start := time.Now()
		e.Figure8_9()
		if timed {
			elapsed[vi] += time.Since(start)
			executed[vi] = e.Executed()
		}
		if err := e.Close(); err != nil {
			b.Fatal(err)
		}
	}
	runSweep(0, false) // warmup
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for vi := 0; vi < len(variants); vi++ {
			runSweep(vi, true)
		}
		for vi := len(variants) - 1; vi >= 0; vi-- {
			runSweep(vi, true)
		}
	}
	perRun := float64(benchWarmup + benchInstr)
	for vi, v := range variants {
		b.ReportMetric(float64(executed[vi])*perRun*float64(2*b.N)/elapsed[vi].Seconds(),
			v.name+":instr/s")
	}
	b.ReportMetric(float64(executed[0]), "cells")
}
