module hotleakage

go 1.22
